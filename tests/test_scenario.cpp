// Scenario-layer tests: the declarative experiment value type, its
// two-way common::Config binding, and the workload variants
// (synthetic / app / trace / custom).

#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "traffic/request_reply.hpp"

namespace nocdvfs::sim {
namespace {

RunPhases short_phases() {
  RunPhases phases;
  phases.warmup_node_cycles = 8000;
  phases.measure_node_cycles = 12000;
  phases.adaptive_warmup = false;
  return phases;
}

Scenario small_synthetic() {
  Scenario s;
  s.network.width = 3;
  s.network.height = 3;
  s.packet_size = 4;
  s.lambda = 0.1;
  s.control_period = 2000;
  s.phases = short_phases();
  return s;
}

bool results_identical(const RunResult& a, const RunResult& b) {
  return a.avg_delay_ns == b.avg_delay_ns && a.packets_delivered == b.packets_delivered &&
         a.avg_latency_cycles == b.avg_latency_cycles &&
         a.avg_frequency_hz == b.avg_frequency_hz && a.power_mw() == b.power_mw() &&
         a.delivered_flits_per_node_cycle == b.delivered_flits_per_node_cycle &&
         a.vf_trace.size() == b.vf_trace.size() &&
         a.window_trace.size() == b.window_trace.size();
}

TEST(ScenarioConfig, DeclareAndFromConfigRoundTrip) {
  Scenario defaults = small_synthetic();
  defaults.pattern = "tornado";
  defaults.policy.policy = Policy::Dmsd;
  defaults.policy.target_delay_ns = 123.5;
  defaults.seed = 9;

  common::Config c;
  Scenario::declare_keys(c, defaults);
  const Scenario round = Scenario::from_config(c);

  EXPECT_EQ(round.workload, Scenario::Workload::Synthetic);
  EXPECT_EQ(round.pattern, "tornado");
  EXPECT_EQ(round.network.width, 3);
  EXPECT_EQ(round.packet_size, 4);
  EXPECT_DOUBLE_EQ(round.lambda, 0.1);
  EXPECT_EQ(round.policy.policy, Policy::Dmsd);
  EXPECT_DOUBLE_EQ(round.policy.target_delay_ns, 123.5);
  EXPECT_EQ(round.control_period, 2000u);
  EXPECT_EQ(round.seed, 9u);
  EXPECT_EQ(round.phases.warmup_node_cycles, 8000u);
  EXPECT_EQ(round.phases.measure_node_cycles, 12000u);
  EXPECT_FALSE(round.phases.adaptive_warmup);
}

TEST(ScenarioConfig, KeyValueOverridesReachTheScenario) {
  common::Config c;
  Scenario::declare_keys(c);
  const char* argv[] = {"prog",   "workload=app", "app=vce",    "speed=0.5",
                        "vcs=4",  "policy=QBSD",  "lambda=0.3", "seed=77"};
  c.parse_args(8, argv);
  const Scenario s = Scenario::from_config(c);
  EXPECT_EQ(s.workload, Scenario::Workload::App);
  EXPECT_EQ(s.app, "vce");
  EXPECT_DOUBLE_EQ(s.speed, 0.5);
  EXPECT_EQ(s.network.num_vcs, 4);
  EXPECT_EQ(s.policy.policy, Policy::Qbsd);  // case-insensitive
  EXPECT_DOUBLE_EQ(s.lambda, 0.3);
  EXPECT_EQ(s.seed, 77u);
}

TEST(ScenarioConfig, UnknownWorkloadRejected) {
  common::Config c;
  Scenario::declare_keys(c);
  c.set("workload", "magic");
  EXPECT_THROW(Scenario::from_config(c), std::invalid_argument);
}

TEST(ScenarioRun, RerunIsBitIdentical) {
  Scenario s = small_synthetic();
  s.policy.policy = Policy::Rmsd;
  s.policy.lambda_max = 0.4;
  const RunResult a = run(s);
  const RunResult b = run(s);
  EXPECT_TRUE(results_identical(a, b));
}

TEST(ScenarioConfig, TraceAndRecordKeysRoundTrip) {
  common::Config c;
  Scenario::declare_keys(c);
  const char* argv[] = {"prog", "workload=trace", "trace=run.noctrace",
                        "trace_scale=1.5", "trace_loop=1", "record=out.noctrace"};
  c.parse_args(6, argv);
  const Scenario s = Scenario::from_config(c);
  EXPECT_EQ(s.workload, Scenario::Workload::Trace);
  EXPECT_EQ(s.trace_path, "run.noctrace");
  EXPECT_DOUBLE_EQ(s.trace_scale, 1.5);
  EXPECT_TRUE(s.trace_loop);
  EXPECT_EQ(s.record_path, "out.noctrace");
}

TEST(ScenarioRun, TraceWorkloadWithoutPathThrows) {
  Scenario s = small_synthetic();
  s.workload = Scenario::Workload::Trace;
  EXPECT_THROW(run(s), std::invalid_argument);
  EXPECT_THROW(mean_lambda(s), std::invalid_argument);
}

TEST(ScenarioRun, CustomWorkloadRunsThroughFactory) {
  Scenario s = small_synthetic();
  s.workload = Scenario::Workload::Custom;
  s.traffic_factory = [](const Scenario& sc) -> std::unique_ptr<traffic::TrafficModel> {
    noc::MeshTopology topo(sc.network.width, sc.network.height);
    traffic::RequestReplyParams rr;
    rr.request_rate = 0.01;
    rr.seed = sc.seed;
    return std::make_unique<traffic::RequestReplyTraffic>(topo, rr);
  };
  const RunResult r = run(s);
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_GT(r.class1_packets, 0u);  // replies flowed, so the factory was honored
}

TEST(ScenarioRun, CustomWorkloadWithoutFactoryThrows) {
  Scenario s = small_synthetic();
  s.workload = Scenario::Workload::Custom;
  EXPECT_THROW(run(s), std::invalid_argument);
}

TEST(ScenarioMeanLambda, PerWorkloadSemantics) {
  Scenario s = small_synthetic();
  EXPECT_DOUBLE_EQ(mean_lambda(s), s.lambda);

  s.workload = Scenario::Workload::App;
  s.app = "h264";
  s.speed = 1.0;
  s.traffic_scale = 1.0;
  const double base = mean_lambda(s);
  EXPECT_GT(base, 0.0);
  s.speed = 2.0;
  EXPECT_NEAR(mean_lambda(s), 2.0 * base, 1e-12);

  s.workload = Scenario::Workload::Custom;
  EXPECT_THROW(mean_lambda(s), std::invalid_argument);
}

TEST(ScenarioSimulator, MakeSimulatorExposesComposition) {
  const Scenario s = small_synthetic();
  const auto simulator = make_simulator(s);
  ASSERT_NE(simulator, nullptr);
  EXPECT_EQ(simulator->config().network.width, 3);
  EXPECT_EQ(simulator->config().control_period_node_cycles, 2000u);
}

}  // namespace
}  // namespace nocdvfs::sim
