// Host-observability suite: the phase profiler's accounting and off-mode
// guarantees, the run-provenance manifest, the .nocobs v3 host sections,
// the cross-tool magic diagnostics, and the SweepRunner host report.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/memstats.hpp"
#include "obs/prof.hpp"
#include "obs/timeline.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "trace/trace.hpp"

namespace {

// ---------------------------------------------------------------------------
// Global allocation counter (for the off-mode zero-allocation test). The
// replacement operators delegate to malloc/free, so every other test runs
// through them too — harmless, they only add a relaxed counter bump.
// ---------------------------------------------------------------------------

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace nocdvfs {
namespace {

using obs::PhaseStats;
using obs::Profile;
using obs::RunManifest;
using obs::Timeline;

void spin_for(std::chrono::microseconds d) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < d) {
  }
}

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A small, fast scenario for end-to-end host-observability checks.
sim::Scenario small_scenario() {
  sim::Scenario s;
  s.network.width = 5;
  s.network.height = 5;
  s.lambda = 0.05;
  s.seed = 1;
  s.control_period = 5000;
  s.phases.warmup_node_cycles = 5000;
  s.phases.measure_node_cycles = 10000;
  s.phases.adaptive_warmup = false;
  return s;
}

// ---------------------------------------------------------------------------
// Profiler accounting
// ---------------------------------------------------------------------------

TEST(ProfCollector, NestedScopesAccountInclusiveAndExclusive) {
  obs::prof::Collector c;
  c.install();
  {
    PROF_SCOPE("outer");
    spin_for(std::chrono::microseconds(200));
    {
      PROF_SCOPE("inner");
      spin_for(std::chrono::microseconds(200));
    }
    {
      PROF_SCOPE("inner");
      spin_for(std::chrono::microseconds(200));
    }
  }
  c.uninstall();
  const Profile p = c.take();

  ASSERT_EQ(p.phases.size(), 2u);
  const PhaseStats& outer = p.phases[0];
  const PhaseStats& inner = p.phases[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.calls, 2u);  // same (name, id) → one node, two calls

  // Inclusive covers the children; exclusive is exactly the remainder.
  EXPECT_GE(outer.inclusive_ns, inner.inclusive_ns);
  EXPECT_EQ(outer.exclusive_ns, outer.inclusive_ns - inner.inclusive_ns);
  // A leaf's exclusive time is its inclusive time.
  EXPECT_EQ(inner.exclusive_ns, inner.inclusive_ns);
  // Both phases really measured the spins.
  EXPECT_GE(outer.exclusive_ns, 100'000u);
  EXPECT_GE(inner.inclusive_ns, 300'000u);
}

TEST(ProfCollector, PerIdScopesBecomeDistinctPhases) {
  obs::prof::Collector c;
  c.install();
  {
    PROF_SCOPE("run");
    for (int rep = 0; rep < 3; ++rep) {
      for (int island = 0; island < 2; ++island) {
        PROF_SCOPE_ID("island_step", island);
        spin_for(std::chrono::microseconds(50));
      }
    }
  }
  c.uninstall();
  const Profile p = c.take();

  ASSERT_EQ(p.phases.size(), 3u);
  EXPECT_EQ(p.phases[0].name, "run");
  EXPECT_EQ(p.phases[1].name, "island_step#0");
  EXPECT_EQ(p.phases[1].calls, 3u);
  EXPECT_EQ(p.phases[2].name, "island_step#1");
  EXPECT_EQ(p.phases[2].calls, 3u);
  EXPECT_EQ(p.root_inclusive_ns(), p.phases[0].inclusive_ns);
}

TEST(ProfProfile, MergeIsDeterministicAndSums) {
  const auto mk = [](std::vector<PhaseStats> phases) {
    Profile p;
    p.phases = std::move(phases);
    return p;
  };
  const Profile p1 = mk({{"run", 0, 1, 100, 40}, {"a", 1, 2, 30, 30}, {"b", 1, 1, 30, 30}});
  const Profile p2 = mk({{"run", 0, 1, 200, 80}, {"b", 1, 3, 60, 60}, {"c", 1, 1, 60, 60}});

  Profile m = p1;
  m.merge(p2);
  ASSERT_EQ(m.phases.size(), 4u);
  // First profile's order is preserved; new phases append in encounter order.
  EXPECT_EQ(m.phases[0].name, "run");
  EXPECT_EQ(m.phases[1].name, "a");
  EXPECT_EQ(m.phases[2].name, "b");
  EXPECT_EQ(m.phases[3].name, "c");
  EXPECT_EQ(m.phases[0].calls, 2u);
  EXPECT_EQ(m.phases[0].inclusive_ns, 300u);
  EXPECT_EQ(m.phases[0].exclusive_ns, 120u);
  EXPECT_EQ(m.phases[2].calls, 4u);
  EXPECT_EQ(m.phases[2].inclusive_ns, 90u);
  EXPECT_EQ(m.phases[3].calls, 1u);

  // Merging the same inputs again yields the identical result.
  Profile m2 = p1;
  m2.merge(p2);
  ASSERT_EQ(m2.phases.size(), m.phases.size());
  for (std::size_t i = 0; i < m.phases.size(); ++i) {
    EXPECT_EQ(m2.phases[i].name, m.phases[i].name);
    EXPECT_EQ(m2.phases[i].calls, m.phases[i].calls);
    EXPECT_EQ(m2.phases[i].inclusive_ns, m.phases[i].inclusive_ns);
    EXPECT_EQ(m2.phases[i].exclusive_ns, m.phases[i].exclusive_ns);
  }
}

TEST(ProfScope, OffModeAllocatesNothing) {
  ASSERT_FALSE(obs::prof::globally_enabled());
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    PROF_SCOPE("never_recorded");
    PROF_SCOPE_ID("never_recorded_id", i);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after) << "prof=off scopes must not allocate";
}

// ---------------------------------------------------------------------------
// Manifest & memstats
// ---------------------------------------------------------------------------

TEST(RunManifest, SetOverwritesInPlaceAndFindsKeys) {
  RunManifest m;
  m.set("a", std::string("1"));
  m.set("b", std::uint64_t{2});
  m.set("a", std::string("3"));  // overwrite keeps position
  ASSERT_EQ(m.entries.size(), 2u);
  EXPECT_EQ(m.entries[0].first, "a");
  EXPECT_EQ(m.entries[0].second, "3");
  ASSERT_NE(m.find("b"), nullptr);
  EXPECT_EQ(*m.find("b"), "2");
  EXPECT_EQ(m.find("missing"), nullptr);
}

TEST(RunManifest, BuildInfoNamesCompilerAndGit) {
  RunManifest m;
  obs::fill_build_info(m);
  ASSERT_NE(m.find("build.compiler"), nullptr);
  ASSERT_NE(m.find("build.git"), nullptr);
  ASSERT_NE(m.find("build.asserts"), nullptr);
  EXPECT_FALSE(m.find("build.compiler")->empty());
}

TEST(MemStats, ProcessMemorySamplesNonZeroOnLinux) {
#if defined(__linux__)
  const obs::MemSample s = obs::sample_process_memory();
  EXPECT_GT(s.peak_rss_bytes, 0u);
  EXPECT_GT(s.current_rss_bytes, 0u);
#else
  GTEST_SKIP() << "peak-RSS sampling is Linux-only";
#endif
}

TEST(HostResult, RunAttachesWallTimeManifestAndProfile) {
  sim::Scenario s = small_scenario();
  s.prof = "on";
  s.mem = "on";
  const sim::RunResult r = sim::run(s);

  EXPECT_GT(r.host.wall_s, 0.0);
#if defined(__linux__)
  EXPECT_GT(r.host.peak_rss_bytes, 0u);
#endif

  // The manifest re-runs the point: scenario keys + seed are all present.
  ASSERT_NE(r.manifest.find("scenario.seed"), nullptr);
  EXPECT_EQ(*r.manifest.find("scenario.seed"), "1");
  ASSERT_NE(r.manifest.find("scenario.lambda"), nullptr);
  ASSERT_NE(r.manifest.find("scenario.prof"), nullptr);
  ASSERT_NE(r.manifest.find("build.compiler"), nullptr);
  ASSERT_NE(r.manifest.find("host.wall_s"), nullptr);
  ASSERT_NE(r.manifest.find("host.calib_mops"), nullptr);
  ASSERT_NE(r.manifest.find("mem.total_bytes"), nullptr);
  ASSERT_NE(r.manifest.find("mem.flits_in_flight.bytes"), nullptr);

  // prof=on yields a profile rooted at the main loop's "run" phase, and
  // the root's inclusive time is bounded by the measured host wall time.
  ASSERT_FALSE(r.host.profile.empty());
  EXPECT_EQ(r.host.profile.phases.front().name, "run");
  EXPECT_GT(r.host.profile.root_inclusive_ns(), 0u);
  EXPECT_LE(static_cast<double>(r.host.profile.root_inclusive_ns()) * 1e-9,
            r.host.wall_s * 1.05);
}

TEST(HostResult, ProfOffLeavesProfileEmptyButManifestPresent) {
  const sim::RunResult r = sim::run(small_scenario());
  EXPECT_TRUE(r.host.profile.empty());
  EXPECT_GT(r.host.wall_s, 0.0);
  ASSERT_NE(r.manifest.find("scenario.seed"), nullptr);
  EXPECT_EQ(r.manifest.find("host.calib_mops"), nullptr);  // prof-gated spin
  EXPECT_EQ(r.manifest.find("mem.total_bytes"), nullptr);  // mem=off
}

// ---------------------------------------------------------------------------
// .nocobs v3 round-trip & cross-tool magic diagnostics
// ---------------------------------------------------------------------------

Timeline host_only_timeline() {
  Timeline tl;
  tl.manifest = {{"scenario.seed", "1"}, {"build.compiler", "test"}};
  tl.host_phases = {{"run", 0, 1, 5000, 2000}, {"island_step#0", 1, 10, 3000, 3000}};
  tl.host_spans = {{0, 0, 100, 200}, {1, 1, 120, 260}};
  tl.host_workers = {{0, 1, 100}, {1, 1, 140}};
  return tl;
}

TEST(TimelineV3, HostSectionsRoundTrip) {
  const std::string path = tmp_path("nocdvfs_test_host_sections.nocobs");
  const Timeline tl = host_only_timeline();
  obs::write_timeline_binary(tl, path);
  const Timeline back = obs::read_timeline_binary(path);

  EXPECT_EQ(back.version, Timeline::kVersion);
  ASSERT_EQ(back.manifest.size(), tl.manifest.size());
  EXPECT_EQ(back.manifest[0].first, "scenario.seed");
  EXPECT_EQ(back.manifest[0].second, "1");
  ASSERT_EQ(back.host_phases.size(), 2u);
  EXPECT_EQ(back.host_phases[0].name, "run");
  EXPECT_EQ(back.host_phases[1].name, "island_step#0");
  EXPECT_EQ(back.host_phases[1].depth, 1);
  EXPECT_EQ(back.host_phases[1].calls, 10u);
  EXPECT_EQ(back.host_phases[1].inclusive_ns, 3000u);
  ASSERT_EQ(back.host_spans.size(), 2u);
  EXPECT_EQ(back.host_spans[1].worker, 1);
  EXPECT_EQ(back.host_spans[1].t1_ns, 260u);
  ASSERT_EQ(back.host_workers.size(), 2u);
  EXPECT_EQ(back.host_workers[1].busy_ns, 140u);
  std::filesystem::remove(path);
}

TEST(TimelineV3, ExportedRunCarriesManifestAndPhases) {
  const std::string base = tmp_path("nocdvfs_test_prof_export");
  sim::Scenario s = small_scenario();
  s.prof = "on";
  s.telemetry = "windows";
  s.telemetry_out = base;
  sim::run(s);

  const Timeline tl = obs::read_timeline_binary(base + ".nocobs");
  EXPECT_FALSE(tl.manifest.empty());
  ASSERT_FALSE(tl.host_phases.empty());
  EXPECT_EQ(tl.host_phases.front().name, "run");

  // The Perfetto export gained a "host" process with the phase spans.
  std::ifstream json(base + ".json");
  ASSERT_TRUE(json);
  std::stringstream buf;
  buf << json.rdbuf();
  const std::string j = buf.str();
  EXPECT_NE(j.find("\"name\":\"host\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"host\""), std::string::npos);
  std::filesystem::remove(base + ".nocobs");
  std::filesystem::remove(base + ".json");
}

TEST(MagicMismatch, TimelineReaderNamesTheTraceToolForNoctraceFiles) {
  const std::string path = tmp_path("nocdvfs_test_magic.noctrace");
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "NOCTRACE";
    const std::string zeros(32, '\0');
    os.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  try {
    obs::read_timeline_binary(path);
    FAIL() << "expected a magic-mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NOCT"), std::string::npos) << msg;
    EXPECT_NE(msg.find("NOCO"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nocdvfs_trace"), std::string::npos) << msg;
  }
  std::filesystem::remove(path);
}

TEST(MagicMismatch, TraceReaderNamesTheReportToolForNocobsFiles) {
  const std::string path = tmp_path("nocdvfs_test_magic.nocobs");
  obs::write_timeline_binary(host_only_timeline(), path);
  try {
    trace::TraceReader reader(path);
    FAIL() << "expected a magic-mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NOCO"), std::string::npos) << msg;
    EXPECT_NE(msg.find("NOCTRACE"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nocdvfs_report"), std::string::npos) << msg;
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// SweepRunner host report & sinks
// ---------------------------------------------------------------------------

TEST(SweepHost, RunnerReportsWorkerSpansAndMergedProfile) {
  sim::Scenario base = small_scenario();
  base.prof = "on";
  sim::SweepRunner::Options opt;
  opt.threads = 2;
  sim::SweepRunner runner(opt);
  const auto records = runner.run(base, {sim::SweepAxis::seeds(4)}, "host_report");
  ASSERT_EQ(records.size(), 4u);

  const sim::SweepHostReport& report = runner.host_report();
  EXPECT_GT(report.wall_s, 0.0);
  ASSERT_EQ(report.spans.size(), 4u);
  std::uint64_t points = 0;
  for (const obs::HostWorkerStats& w : report.workers) points += w.points;
  EXPECT_EQ(points, 4u);
  for (const obs::HostWorkerSpan& span : report.spans) {
    EXPECT_GE(span.t1_ns, span.t0_ns);
    EXPECT_LT(span.point, 4u);
  }
  ASSERT_FALSE(report.profile.empty());
  EXPECT_EQ(report.profile.phases.front().name, "run");
  EXPECT_EQ(report.profile.phases.front().calls, 4u);  // one root per point

  // The host-only timeline export round-trips the report.
  const std::string base_path = tmp_path("nocdvfs_test_sweep_host");
  sim::write_sweep_host_timeline(report, base_path);
  const Timeline tl = obs::read_timeline_binary(base_path + ".nocobs");
  EXPECT_EQ(tl.host_spans.size(), 4u);
  EXPECT_EQ(tl.host_workers.size(), report.workers.size());
  EXPECT_EQ(tl.host_phases.size(), report.profile.phases.size());
  std::filesystem::remove(base_path + ".nocobs");
  std::filesystem::remove(base_path + ".json");
}

TEST(SweepHost, CsvSinkAppendsHostColumns) {
  std::ostringstream csv;
  sim::CsvResultSink sink(csv);
  sim::SweepRunner::Options opt;
  opt.threads = 1;
  sim::SweepRunner runner(opt);
  runner.add_sink(sink);
  runner.run(small_scenario(), {sim::SweepAxis::seeds(1)}, "host_cols");

  std::istringstream lines(csv.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find(",host_wall_s,peak_rss_mb,manifest"), std::string::npos);
  std::string row;
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_NE(row.find("scenario.seed=1"), std::string::npos)
      << "the manifest cell must carry the scenario keys";
}

TEST(SweepHost, JsonlSinkCarriesHostAndManifestObjects) {
  std::ostringstream jsonl;
  sim::JsonlResultSink sink(jsonl, /*include_traces=*/false);
  sim::SweepRunner::Options opt;
  opt.threads = 1;
  sim::SweepRunner runner(opt);
  runner.add_sink(sink);
  runner.run(small_scenario(), {sim::SweepAxis::seeds(1)}, "host_jsonl");

  const std::string line = jsonl.str();
  EXPECT_NE(line.find("\"host\":{\"wall_s\":"), std::string::npos);
  EXPECT_NE(line.find("\"manifest\":{"), std::string::npos);
  EXPECT_NE(line.find("\"scenario.seed\":\"1\""), std::string::npos);
}

}  // namespace
}  // namespace nocdvfs
