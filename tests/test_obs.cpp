// Telemetry subsystem tests: registry/sampler semantics, binary timeline
// round-trip, Perfetto writer structure, and — the load-bearing part —
// exact conservation between the sampled per-tile series and the
// network's live counters (stall taxonomy included) across mesh, torus,
// faulted, and multi-island scenarios.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "sim/scenario.hpp"

namespace nocdvfs {
namespace {

namespace fs = std::filesystem;

std::string temp_base(const std::string& name) {
  return (fs::temp_directory_path() / ("nocdvfs_test_obs_" + name)).string();
}

// ---------------------------------------------------------------------------
// Registry & sampler
// ---------------------------------------------------------------------------

TEST(TelemetryMode, StringRoundTripAndErrors) {
  using obs::TelemetryMode;
  EXPECT_EQ(obs::telemetry_mode_from_string("off"), TelemetryMode::Off);
  EXPECT_EQ(obs::telemetry_mode_from_string("Windows"), TelemetryMode::Windows);
  EXPECT_EQ(obs::telemetry_mode_from_string("FULL"), TelemetryMode::Full);
  EXPECT_STREQ(obs::to_string(TelemetryMode::Windows), "windows");
  EXPECT_THROW(obs::telemetry_mode_from_string("on"), std::invalid_argument);
  EXPECT_THROW(obs::telemetry_mode_from_string(""), std::invalid_argument);
}

TEST(TelemetryRegistry, RejectsDuplicatesAndBadEntities) {
  obs::TelemetryRegistry reg;
  reg.register_counter("c", obs::MetricScope::Tile, 4, [](int) { return 0ull; });
  EXPECT_THROW(
      reg.register_counter("c", obs::MetricScope::Node, 4, [](int) { return 0ull; }),
      std::invalid_argument);
  EXPECT_THROW(
      reg.register_gauge("g", obs::MetricScope::Tile, 0, [](int) { return 0.0; }),
      std::invalid_argument);
  EXPECT_THROW(
      reg.register_counter("", obs::MetricScope::Tile, 1, [](int) { return 0ull; }),
      std::invalid_argument);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(TelemetrySampler, CounterDeltasSumToLiveValue) {
  std::vector<std::uint64_t> live = {10, 20};  // baseline, taken at construction
  double gauge_value = 1.5;
  obs::TelemetryRegistry reg;
  reg.register_counter("flits", obs::MetricScope::Tile, 2,
                       [&](int e) { return live[static_cast<std::size_t>(e)]; });
  reg.register_gauge("occ", obs::MetricScope::Island, 1, [&](int) { return gauge_value; });
  obs::TelemetrySampler sampler(reg);

  live = {13, 20};
  sampler.sample();  // deltas {3, 0}
  live = {14, 27};
  gauge_value = 2.5;
  sampler.sample();  // deltas {1, 7}

  obs::Timeline tl;
  sampler.finish(tl);
  ASSERT_EQ(tl.series.size(), 2u);
  const obs::MetricSeries& flits = tl.series[0];
  EXPECT_EQ(flits.kind, obs::MetricKind::Counter);
  EXPECT_EQ(flits.count_at(0, 0), 3u);
  EXPECT_EQ(flits.count_at(1, 1), 7u);
  // Column sums reproduce the live counters minus the construction baseline.
  EXPECT_EQ(flits.entity_total(0), live[0] - 10);
  EXPECT_EQ(flits.entity_total(1), live[1] - 20);
  const obs::MetricSeries& occ = tl.series[1];
  EXPECT_EQ(occ.kind, obs::MetricKind::Gauge);
  EXPECT_DOUBLE_EQ(occ.gauge_at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(occ.gauge_at(1, 0), 2.5);
}

// ---------------------------------------------------------------------------
// Binary timeline round-trip
// ---------------------------------------------------------------------------

obs::Timeline synthetic_timeline() {
  obs::Timeline tl;
  tl.width = 3;
  tl.height = 2;
  tl.num_routers = 6;
  tl.num_islands = 2;
  tl.concentration = 1;
  tl.f_node_hz = 1e9;
  tl.control_period_node_cycles = 10000;
  tl.island_policy = {"rmsd", "dmsd"};
  tl.island_nodes = {3, 3};
  tl.window_t_ps = {10'000'000, 20'000'000};
  tl.island_rows = {{5e8, 0.9, 120.0, 0.2, 0.1, -0.05, 0},
                    {6e8, 0.95, 130.0, 0.25, 0.12, 0.02, 1},
                    {5.5e8, 0.92, 121.0, 0.21, 0.11, -0.01, 0},
                    {6.1e8, 0.96, 131.0, 0.26, 0.13, 0.03, 0}};
  tl.links = {{0, 1, 1}, {1, 3, 0}};
  obs::MetricSeries s;
  s.name = "flits_forwarded";
  s.scope = obs::MetricScope::Tile;
  s.kind = obs::MetricKind::Counter;
  s.entities = 6;
  s.counts = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  tl.series.push_back(s);
  obs::MetricSeries g;
  g.name = "cdc_occupancy";
  g.scope = obs::MetricScope::Island;
  g.kind = obs::MetricKind::Gauge;
  g.entities = 2;
  g.gauges = {0.5, 1.5, 2.5, 3.5};
  tl.series.push_back(g);
  tl.events = {{obs::EventKind::DvfsActuation, 0, 10'000'000, 5e8, 1e9},
               {obs::EventKind::FaultEpoch, -1, 15'000'000, 2.0, 0.0},
               {obs::EventKind::Settled, 1, 20'000'000, 6e8, 0.0}};
  // v2 sections: one complete two-hop packet flight and one histogram.
  obs::FlightRecord fl;
  fl.packet_id = 42;
  fl.src = 0;
  fl.dst = 1;
  fl.size_flits = 20;
  fl.traffic_class = 1;
  fl.create_t_ps = 900;
  fl.events = {{1000, -1, 0, obs::FlightStage::Inject},
               {1100, 0, 0, obs::FlightStage::RouterArrive},
               {1200, 0, 2, obs::FlightStage::RouteComputed},
               {1300, 0, 1, obs::FlightStage::VcGranted},
               {1400, 0, 2, obs::FlightStage::RouterDepart},
               {1500, 1, 1, obs::FlightStage::RouterArrive},
               {1600, 1, 4, obs::FlightStage::RouteComputed},
               {1700, 1, 0, obs::FlightStage::VcGranted},
               {1900, 1, 4, obs::FlightStage::RouterDepart},
               {2000, -1, 0, obs::FlightStage::Eject}};
  tl.flights.push_back(fl);
  obs::HistogramSnapshot hs;
  hs.label = "delay_ps";
  hs.count = 3;
  hs.min = 100;
  hs.max = 4000;
  hs.bucket_index = {13, 23};
  hs.bucket_count = {2, 1};
  tl.histograms.push_back(hs);
  return tl;
}

TEST(TimelineBinary, RoundTripsEveryField) {
  const obs::Timeline tl = synthetic_timeline();
  const std::string path = temp_base("roundtrip") + ".nocobs";
  obs::write_timeline_binary(tl, path);
  const obs::Timeline rt = obs::read_timeline_binary(path);

  EXPECT_EQ(rt.width, tl.width);
  EXPECT_EQ(rt.height, tl.height);
  EXPECT_EQ(rt.num_routers, tl.num_routers);
  EXPECT_EQ(rt.num_islands, tl.num_islands);
  EXPECT_EQ(rt.concentration, tl.concentration);
  EXPECT_DOUBLE_EQ(rt.f_node_hz, tl.f_node_hz);
  EXPECT_EQ(rt.control_period_node_cycles, tl.control_period_node_cycles);
  EXPECT_EQ(rt.island_policy, tl.island_policy);
  EXPECT_EQ(rt.island_nodes, tl.island_nodes);
  EXPECT_EQ(rt.window_t_ps, tl.window_t_ps);
  ASSERT_EQ(rt.island_rows.size(), tl.island_rows.size());
  for (std::size_t i = 0; i < tl.island_rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rt.island_rows[i].f_hz, tl.island_rows[i].f_hz);
    EXPECT_DOUBLE_EQ(rt.island_rows[i].ctrl_error, tl.island_rows[i].ctrl_error);
    EXPECT_EQ(rt.island_rows[i].throttled, tl.island_rows[i].throttled);
  }
  ASSERT_EQ(rt.links.size(), tl.links.size());
  EXPECT_EQ(rt.links[1].src_router, 1);
  EXPECT_EQ(rt.links[1].src_port, 3);
  ASSERT_EQ(rt.series.size(), tl.series.size());
  EXPECT_EQ(rt.series[0].name, "flits_forwarded");
  EXPECT_EQ(rt.series[0].counts, tl.series[0].counts);
  EXPECT_EQ(rt.series[1].gauges, tl.series[1].gauges);
  ASSERT_EQ(rt.events.size(), tl.events.size());
  EXPECT_EQ(rt.events[1].kind, obs::EventKind::FaultEpoch);
  EXPECT_EQ(rt.events[1].island, -1);
  EXPECT_EQ(rt.events[2].t_ps, 20'000'000u);
  EXPECT_DOUBLE_EQ(rt.events[0].b, 1e9);
  // v2 sections.
  EXPECT_EQ(rt.version, obs::Timeline::kVersion);
  ASSERT_EQ(rt.flights.size(), tl.flights.size());
  EXPECT_EQ(rt.flights[0].packet_id, 42u);
  EXPECT_EQ(rt.flights[0].src, 0);
  EXPECT_EQ(rt.flights[0].dst, 1);
  EXPECT_EQ(rt.flights[0].size_flits, 20);
  EXPECT_EQ(rt.flights[0].traffic_class, 1);
  EXPECT_EQ(rt.flights[0].create_t_ps, 900u);
  ASSERT_EQ(rt.flights[0].events.size(), tl.flights[0].events.size());
  EXPECT_EQ(rt.flights[0].events[1].stage, obs::FlightStage::RouterArrive);
  EXPECT_EQ(rt.flights[0].events[4].arg, 2);
  EXPECT_EQ(rt.flights[0].events.back().t_ps, 2000u);
  EXPECT_EQ(rt.flights[0].events.back().stage, obs::FlightStage::Eject);
  ASSERT_EQ(rt.histograms.size(), 1u);
  EXPECT_EQ(rt.histograms[0].label, "delay_ps");
  EXPECT_EQ(rt.histograms[0].count, 3u);
  EXPECT_EQ(rt.histograms[0].min, 100u);
  EXPECT_EQ(rt.histograms[0].max, 4000u);
  EXPECT_EQ(rt.histograms[0].bucket_index, tl.histograms[0].bucket_index);
  EXPECT_EQ(rt.histograms[0].bucket_count, tl.histograms[0].bucket_count);
  fs::remove(path);
}

TEST(TimelineBinary, RejectsTruncatedAndForeignFiles) {
  const obs::Timeline tl = synthetic_timeline();
  const std::string path = temp_base("truncate") + ".nocobs";
  obs::write_timeline_binary(tl, path);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_THROW(obs::read_timeline_binary(path), std::runtime_error);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "not a timeline";
  }
  EXPECT_THROW(obs::read_timeline_binary(path), std::runtime_error);
  EXPECT_THROW(obs::read_timeline_binary(temp_base("missing") + ".nocobs"),
               std::runtime_error);
  fs::remove(path);
}

TEST(TimelinePerfetto, EmitsStructuredTraceEvents) {
  const obs::Timeline tl = synthetic_timeline();
  std::ostringstream os;
  obs::write_timeline_perfetto(tl, os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  // One X span per (window, island) on the control-window track, plus the
  // flight's two hop spans and its source-queue wait (inject > create).
  std::size_t spans = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       ++pos) {
    ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(tl.windows() * tl.num_islands) + 3);
  // The complete journey is stitched with flow events keyed on the packet
  // id: one start at injection, one step per mid-journey hop, one end.
  const auto count_of = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = 0; (pos = json.find(needle, pos)) != std::string::npos; ++pos) ++n;
    return n;
  };
  EXPECT_EQ(count_of("\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_of("\"ph\":\"t\""), 2u);
  EXPECT_EQ(count_of("\"ph\":\"f\""), 1u);
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":42"), std::string::npos);
  std::size_t instants = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"i\"", pos)) != std::string::npos;
       ++pos) {
    ++instants;
  }
  EXPECT_EQ(instants, tl.events.size());
  // Balanced braces/brackets outside strings (metric/event names contain
  // neither) — a cheap structural sanity check.
  long depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// Conservation against the live network, across scenario shapes
// ---------------------------------------------------------------------------

sim::Scenario small_base() {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.lambda = 0.15;
  s.policy.policy = sim::Policy::Rmsd;
  s.phases.warmup_node_cycles = 20000;
  s.phases.measure_node_cycles = 20000;
  s.phases.max_warmup_node_cycles = 40000;
  s.telemetry = "full";
  return s;
}

/// Runs the scenario, then asserts the router-level stall conservation law
/// and the timeline-vs-live-counter identities. `name` keys the temp file.
void check_conservation(const sim::Scenario& s, const std::string& name) {
  SCOPED_TRACE(name);
  sim::Scenario scenario = s;
  const std::string base = temp_base(name);
  scenario.telemetry_out = base;
  auto simulator = sim::make_simulator(scenario);
  const sim::RunResult r = simulator->run(scenario.phases);
  const noc::Network& net = simulator->network();

  // Per-router: every busy VC-cycle is either a forward or exactly one
  // stall cause, and the forwarded count is traversals + fault drains.
  std::uint64_t traversals = 0, dropped = 0, busy = 0, stall_sum = 0;
  for (int rt = 0; rt < net.num_routers(); ++rt) {
    const noc::Router& router = net.router_at(rt);
    const noc::RouterStallCounters& st = router.stalls();
    EXPECT_EQ(st.busy_vc_cycles, st.forwarded + st.stall_sum()) << "router " << rt;
    EXPECT_EQ(st.forwarded,
              router.activity().crossbar_traversals + router.dropped_flits())
        << "router " << rt;
    traversals += router.activity().crossbar_traversals;
    dropped += router.dropped_flits();
    busy += st.busy_vc_cycles;
    stall_sum += st.stall_sum();
  }
  // RunResult summary slice mirrors the same totals.
  EXPECT_TRUE(r.telemetry.enabled);
  EXPECT_EQ(r.telemetry.busy_vc_cycles, busy);
  EXPECT_EQ(r.telemetry.flits_forwarded, traversals);
  EXPECT_EQ(r.telemetry.busy_vc_cycles,
            r.telemetry.flits_forwarded + dropped + r.telemetry.stall_route +
                r.telemetry.stall_vc_alloc + r.telemetry.stall_switch +
                r.telemetry.stall_credit + r.telemetry.stall_drop)
      << "summary-level conservation";
  EXPECT_EQ(stall_sum, r.telemetry.stall_route + r.telemetry.stall_vc_alloc +
                           r.telemetry.stall_switch + r.telemetry.stall_credit +
                           r.telemetry.stall_drop);

  // Heatmap conservation: the sampled columns sum to the live counters
  // exactly (counters are delta-sampled with a closing sample).
  const obs::Timeline tl = obs::read_timeline_binary(base + ".nocobs");
  EXPECT_EQ(tl.windows(), static_cast<int>(r.telemetry.windows));
  EXPECT_EQ(tl.island_rows.size(),
            static_cast<std::size_t>(tl.windows() * tl.num_islands));
  for (std::size_t w = 1; w < tl.window_t_ps.size(); ++w) {
    EXPECT_LT(tl.window_t_ps[w - 1], tl.window_t_ps[w]);
  }

  const obs::MetricSeries* fw = tl.find_series("flits_forwarded");
  ASSERT_NE(fw, nullptr);
  std::uint64_t fw_sum = 0;
  for (int e = 0; e < fw->entities; ++e) fw_sum += fw->entity_total(e);
  EXPECT_EQ(fw_sum, traversals);

  const obs::MetricSeries* dropped_series = tl.find_series("flits_dropped");
  ASSERT_NE(dropped_series, nullptr);
  std::uint64_t drop_sum = 0;
  for (int e = 0; e < dropped_series->entities; ++e) {
    drop_sum += dropped_series->entity_total(e);
  }
  EXPECT_EQ(drop_sum, dropped);

  for (const char* name_and_total :
       {"flits_generated", "flits_injected", "flits_ejected", "refused_flits"}) {
    const obs::MetricSeries* series = tl.find_series(name_and_total);
    ASSERT_NE(series, nullptr) << name_and_total;
    EXPECT_EQ(series->scope, obs::MetricScope::Node);
    std::uint64_t sum = 0;
    for (int e = 0; e < series->entities; ++e) sum += series->entity_total(e);
    if (std::string(name_and_total) == "flits_generated") {
      EXPECT_EQ(sum, net.total_flits_generated());
    } else if (std::string(name_and_total) == "flits_ejected") {
      EXPECT_EQ(sum, net.total_flits_ejected());
    }
  }

  // Stall series sum to the router counters per cause.
  const struct {
    const char* series;
    std::uint64_t expected;
  } stalls[] = {{"stall_route", r.telemetry.stall_route},
                {"stall_vc_alloc", r.telemetry.stall_vc_alloc},
                {"stall_switch", r.telemetry.stall_switch},
                {"stall_credit", r.telemetry.stall_credit},
                {"stall_drop", r.telemetry.stall_drop},
                {"busy_vc_cycles", r.telemetry.busy_vc_cycles}};
  for (const auto& [series_name, expected] : stalls) {
    const obs::MetricSeries* series = tl.find_series(series_name);
    ASSERT_NE(series, nullptr) << series_name;
    std::uint64_t sum = 0;
    for (int e = 0; e < series->entities; ++e) sum += series->entity_total(e);
    EXPECT_EQ(sum, expected) << series_name;
  }

  // Link columns (telemetry=full): per-link totals match the source
  // routers' per-port counters, and every link's flits are part of the
  // forwarding total.
  const obs::MetricSeries* link_flits = tl.find_series("link_flits");
  ASSERT_NE(link_flits, nullptr);
  ASSERT_EQ(static_cast<std::size_t>(link_flits->entities), tl.links.size());
  for (int e = 0; e < link_flits->entities; ++e) {
    const obs::LinkInfo& li = tl.links[static_cast<std::size_t>(e)];
    EXPECT_EQ(link_flits->entity_total(e),
              net.router_at(li.src_router).port_flits_forwarded(li.src_port));
  }

  fs::remove(base + ".nocobs");
  fs::remove(base + ".json");
}

TEST(TelemetryConservation, Mesh) { check_conservation(small_base(), "mesh"); }

TEST(TelemetryConservation, TorusAdaptive) {
  sim::Scenario s = small_base();
  s.network.topology = topo::TopologyKind::Torus;
  s.network.routing = noc::RoutingAlgo::Adaptive;
  check_conservation(s, "torus");
}

TEST(TelemetryConservation, FaultedTorus) {
  sim::Scenario s = small_base();
  s.network.topology = topo::TopologyKind::Torus;
  s.network.routing = noc::RoutingAlgo::Adaptive;
  s.network.faults = "links:2@0+links:1@30000";
  check_conservation(s, "faulted");
}

TEST(TelemetryConservation, MultiIsland) {
  sim::Scenario s = small_base();
  s.islands = "quadrants";
  s.island_policies = "rmsd,dmsd,rmsd,qbsd";
  check_conservation(s, "islands");
}

// ---------------------------------------------------------------------------
// Events & off-path identity
// ---------------------------------------------------------------------------

TEST(TelemetryEvents, FaultEpochsAndMeasureMarkersAppear) {
  sim::Scenario s = small_base();
  s.network.topology = topo::TopologyKind::Torus;
  s.network.routing = noc::RoutingAlgo::Adaptive;
  s.network.faults = "links:2@0";
  const std::string base = temp_base("events");
  s.telemetry_out = base;
  (void)sim::run(s);
  const obs::Timeline tl = obs::read_timeline_binary(base + ".nocobs");
  int faults = 0, reroutes = 0, starts = 0, ends = 0, actuations = 0;
  std::uint64_t last_t = 0;
  for (const obs::TimelineEvent& ev : tl.events) {
    switch (ev.kind) {
      case obs::EventKind::FaultEpoch: ++faults; break;
      case obs::EventKind::Reroute: ++reroutes; break;
      case obs::EventKind::MeasureStart: ++starts; break;
      case obs::EventKind::MeasureEnd: ++ends; break;
      case obs::EventKind::DvfsActuation: ++actuations; break;
      default: break;
    }
    EXPECT_GE(ev.t_ps, ev.kind == obs::EventKind::FaultEpoch ||
                               ev.kind == obs::EventKind::Reroute
                           ? 0
                           : last_t);
    if (ev.kind != obs::EventKind::FaultEpoch && ev.kind != obs::EventKind::Reroute) {
      last_t = ev.t_ps;
    }
  }
  EXPECT_EQ(faults, 1);  // the at-start epoch
  EXPECT_EQ(reroutes, 1);
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_GT(actuations, 0);
  fs::remove(base + ".nocobs");
  fs::remove(base + ".json");
}

/// telemetry=windows must not perturb the simulation: every headline
/// metric is bitwise identical to the telemetry=off run.
TEST(TelemetryOffPath, WindowsModeIsMetricsInvisible) {
  sim::Scenario off = small_base();
  off.telemetry = "off";
  sim::Scenario windows = small_base();
  windows.telemetry = "windows";
  const sim::RunResult a = sim::run(off);
  const sim::RunResult b = sim::run(windows);
  const auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };
  EXPECT_EQ(bits(a.avg_delay_ns), bits(b.avg_delay_ns));
  EXPECT_EQ(bits(a.p99_delay_ns), bits(b.p99_delay_ns));
  EXPECT_EQ(bits(a.avg_frequency_hz), bits(b.avg_frequency_hz));
  EXPECT_EQ(bits(a.avg_voltage), bits(b.avg_voltage));
  EXPECT_EQ(bits(a.power.total_j()), bits(b.power.total_j()));
  EXPECT_EQ(bits(a.energy_per_bit_pj), bits(b.energy_per_bit_pj));
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.measure_noc_cycles, b.measure_noc_cycles);
  EXPECT_FALSE(a.telemetry.enabled);
  EXPECT_TRUE(b.telemetry.enabled);
  EXPECT_GT(b.telemetry.busy_vc_cycles, 0u);
  // windows mode records no link table (that's full's job).
  EXPECT_TRUE(b.telemetry.top_links.size() > 0);  // summary links come from live counters
}

TEST(TelemetryScenario, ValidatesModeAndDefaultsOff) {
  sim::Scenario s = small_base();
  s.telemetry = "bogus";
  EXPECT_FALSE(sim::telemetry_config_problem(s).empty());
  EXPECT_THROW(sim::make_simulator(s), std::invalid_argument);
  sim::Scenario d;
  EXPECT_EQ(d.telemetry, "off");
  EXPECT_TRUE(sim::telemetry_config_problem(d).empty());
}

}  // namespace
}  // namespace nocdvfs
