// Tests for multi-seed replication and remaining simulator edge cases:
// zero traffic, YX routing end to end, rectangular meshes, quantized-VF
// runs under DMSD.

#include <gtest/gtest.h>

#include "sim/replication.hpp"

namespace nocdvfs::sim {
namespace {

Scenario small_config() {
  Scenario cfg;
  cfg.network.width = 3;
  cfg.network.height = 3;
  cfg.packet_size = 4;
  cfg.lambda = 0.1;
  cfg.control_period = 2000;
  cfg.phases.warmup_node_cycles = 8000;
  cfg.phases.measure_node_cycles = 12000;
  cfg.phases.adaptive_warmup = false;
  return cfg;
}

TEST(Replication, AggregatesAcrossSeeds) {
  const auto rep = replicate(small_config(), 5, 100);
  EXPECT_EQ(rep.replications, 5);
  ASSERT_EQ(rep.runs.size(), 5u);
  EXPECT_GT(rep.delay_ns.mean, 0.0);
  EXPECT_GT(rep.delay_ns.stddev, 0.0) << "different seeds must produce different samples";
  EXPECT_GT(rep.delay_ns.ci95_half_width, 0.0);
  EXPECT_LE(rep.delay_ns.min, rep.delay_ns.mean);
  EXPECT_GE(rep.delay_ns.max, rep.delay_ns.mean);
  // CI should be tight relative to the mean for this stable metric.
  EXPECT_LT(rep.delay_ns.ci95_half_width, 0.2 * rep.delay_ns.mean);
  EXPECT_NEAR(rep.delivered_lambda.mean, 0.1, 0.01);
}

TEST(Replication, SingleReplicationHasZeroCi) {
  const auto rep = replicate(small_config(), 1);
  EXPECT_EQ(rep.replications, 1);
  EXPECT_DOUBLE_EQ(rep.delay_ns.ci95_half_width, 0.0);
}

TEST(Replication, RejectsNonPositiveCount) {
  EXPECT_THROW(replicate(small_config(), 0), std::invalid_argument);
}

TEST(SimulatorEdge, ZeroTrafficRunIsClean) {
  Scenario cfg = small_config();
  cfg.lambda = 0.0;
  const RunResult r = run(cfg);
  EXPECT_EQ(r.packets_delivered, 0u);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.avg_delay_ns, 0.0);
  // Idle power is still nonzero: clock + leakage.
  EXPECT_GT(r.power_mw(), 1.0);
}

TEST(SimulatorEdge, ZeroTrafficUnderRmsdDropsToFmin) {
  Scenario cfg = small_config();
  cfg.lambda = 0.0;
  cfg.policy.policy = Policy::Rmsd;
  cfg.policy.lambda_max = 0.4;
  const RunResult r = run(cfg);
  EXPECT_NEAR(r.avg_frequency_hz, 333e6, 5e6);
  EXPECT_NEAR(r.avg_voltage, 0.56, 0.01);
}

TEST(SimulatorEdge, YxRoutingDeliversEquivalently) {
  Scenario cfg = small_config();
  cfg.network.routing = noc::RoutingAlgo::YX;
  const RunResult yx = run(cfg);
  cfg.network.routing = noc::RoutingAlgo::XY;
  const RunResult xy = run(cfg);
  EXPECT_GT(yx.packets_delivered, 100u);
  EXPECT_FALSE(yx.saturated);
  // Uniform traffic on a square mesh: XY and YX are statistically
  // symmetric — delays within a broad band of each other.
  EXPECT_NEAR(yx.avg_delay_ns, xy.avg_delay_ns, 0.2 * xy.avg_delay_ns);
}

TEST(SimulatorEdge, RectangularMeshWorks) {
  Scenario cfg = small_config();
  cfg.network.width = 6;
  cfg.network.height = 2;
  const RunResult r = run(cfg);
  EXPECT_GT(r.packets_delivered, 100u);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.delivered_flits_per_node_cycle, 0.1, 0.015);
}

TEST(SimulatorEdge, DmsdWithQuantizedVfStillTracksLoosely) {
  Scenario cfg = small_config();
  cfg.lambda = 0.15;
  cfg.policy.policy = Policy::Dmsd;
  cfg.policy.target_delay_ns = 60.0;
  cfg.vf_levels = 6;
  cfg.phases.adaptive_warmup = true;
  cfg.phases.warmup_node_cycles = 30000;
  cfg.phases.max_warmup_node_cycles = 300000;
  const RunResult r = run(cfg);
  // Discrete levels put a floor/ceiling around the target; the controller
  // must still keep the delay the right order of magnitude and below the
  // worst-case (F_min) delay.
  EXPECT_GT(r.avg_delay_ns, 10.0);
  EXPECT_LT(r.avg_delay_ns, 3.0 * 60.0);
  // Frequency must sit on (or snap up from) one of the six levels.
  const auto curve = power::VfCurve::fdsoi28().quantized(6);
  double nearest = 1e18;
  for (const double level : curve.levels()) {
    nearest = std::min(nearest, std::abs(r.final_frequency_hz - level));
  }
  EXPECT_LT(nearest, 1e4);
}

}  // namespace
}  // namespace nocdvfs::sim
