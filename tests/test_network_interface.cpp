// Network-interface tests: the injection FSM (credit protocol, VC choice,
// packet serialization), the ejection-side reassembly, the measurement
// counters and the failure modes at the node↔NoC boundary.

#include <gtest/gtest.h>

#include <optional>

#include "noc/network_interface.hpp"

namespace nocdvfs::noc {
namespace {

class NiHarness {
 public:
  explicit NiHarness(NiConfig cfg = NiConfig{4, 2})
      : cfg_(cfg), ni_(7, cfg, &delivered_) {
    ni_.connect(&inject_flit, &inject_credit, &eject_flit, &eject_credit);
  }

  /// One NoC cycle as the Network would run it for the NI.
  void cycle(common::Picoseconds now = 0, std::uint64_t noc_cycle = 0) {
    inject_flit.tick();
    inject_credit.tick();
    eject_flit.tick();
    eject_credit.tick();
    ni_.receive_phase(now, noc_cycle);
    ni_.inject_phase();
  }

  NiConfig cfg_;
  std::vector<PacketRecord> delivered_;
  FlitChannel inject_flit{1}, eject_flit{1};
  CreditChannel inject_credit{1}, eject_credit{1};
  NetworkInterface ni_;
};

TEST(NetworkInterface, SerializesPacketOneFlitPerCycle) {
  NiHarness h;
  h.ni_.enqueue_packet(3, 4, 100, 5);
  std::vector<Flit> sent;
  for (int cyc = 0; cyc < 10; ++cyc) {
    h.cycle();
    if (auto f = h.inject_flit.pop()) {
      sent.push_back(*f);
      // Router side dequeues promptly and returns the credit.
      h.inject_credit.push(Credit{f->vc});
    }
  }
  ASSERT_EQ(sent.size(), 4u);
  EXPECT_TRUE(sent.front().head);
  EXPECT_TRUE(sent.back().tail);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(sent[i].flit_index, i);
    EXPECT_EQ(sent[i].vc, sent.front().vc) << "packet must stay on one VC";
    EXPECT_EQ(sent[i].src, 7);
    EXPECT_EQ(sent[i].dst, 3);
    EXPECT_EQ(sent[i].create_time_ps, 100u);
    EXPECT_EQ(sent[i].create_noc_cycle, 5u);
  }
  EXPECT_EQ(h.ni_.flits_injected(), 4u);
  EXPECT_EQ(h.ni_.source_backlog_flits(), 0u);
}

TEST(NetworkInterface, RespectsCreditLimit) {
  NiHarness h(NiConfig{2, 2});  // 2 VCs × 2 credits
  h.ni_.enqueue_packet(1, 6, 0, 0);
  int sent = 0;
  for (int cyc = 0; cyc < 10; ++cyc) {
    h.cycle();
    if (h.inject_flit.pop()) ++sent;
  }
  EXPECT_EQ(sent, 2) << "without credit returns only the buffer depth may enter";
  // Return one credit on the VC it used: exactly one more flit.
  h.inject_credit.push(Credit{0});
  for (int cyc = 0; cyc < 4; ++cyc) {
    h.cycle();
    if (h.inject_flit.pop()) ++sent;
  }
  EXPECT_EQ(sent, 3);
}

TEST(NetworkInterface, RoundRobinsVcsAcrossPackets) {
  NiHarness h(NiConfig{4, 4});
  for (int p = 0; p < 4; ++p) h.ni_.enqueue_packet(1, 1, 0, 0);
  std::vector<int> vcs;
  for (int cyc = 0; cyc < 12 && vcs.size() < 4; ++cyc) {
    h.cycle();
    if (auto f = h.inject_flit.pop()) vcs.push_back(f->vc);
  }
  ASSERT_EQ(vcs.size(), 4u);
  EXPECT_EQ(vcs, (std::vector<int>{0, 1, 2, 3})) << "fresh credits: VCs used in rotation";
}

TEST(NetworkInterface, BacklogTracksQueueAndPartialPacket) {
  NiHarness h;
  h.ni_.enqueue_packet(1, 6, 0, 0);
  h.ni_.enqueue_packet(2, 4, 0, 0);
  EXPECT_EQ(h.ni_.source_backlog_flits(), 10u);
  EXPECT_EQ(h.ni_.packets_generated(), 2u);
  EXPECT_EQ(h.ni_.flits_generated(), 10u);
  h.cycle();  // first flit leaves
  EXPECT_EQ(h.ni_.source_backlog_flits(), 9u);
}

TEST(NetworkInterface, EjectionReassemblesAndRecordsDelay) {
  NiHarness h;
  // Deliver a 3-flit packet interleaved over 3 cycles on VC 2.
  for (int i = 0; i < 3; ++i) {
    Flit f;
    f.packet_id = 99;
    f.src = 1;
    f.dst = 7;
    f.flit_index = static_cast<std::uint16_t>(i);
    f.packet_size = 3;
    f.head = (i == 0);
    f.tail = (i == 2);
    f.vc = 2;
    f.create_time_ps = 1000;
    f.create_noc_cycle = 10;
    f.hops = 4;
    h.eject_flit.push(f);
    h.cycle(5000 + 1000 * static_cast<common::Picoseconds>(i), 20 + static_cast<std::uint64_t>(i));
    (void)h.eject_credit.pop();  // the router side consumes the returned credit
  }
  ASSERT_EQ(h.delivered_.size(), 1u);
  const PacketRecord& rec = h.delivered_.front();
  EXPECT_EQ(rec.packet_id, 99u);
  EXPECT_EQ(rec.src, 1);
  EXPECT_EQ(rec.dst, 7);
  EXPECT_EQ(rec.size, 3);
  EXPECT_EQ(rec.hops, 4);
  EXPECT_EQ(rec.create_time_ps, 1000u);
  EXPECT_EQ(rec.eject_time_ps, 7000u);
  EXPECT_NEAR(rec.delay_ns(), 6.0, 1e-9);
  EXPECT_EQ(rec.latency_cycles(), 12u);
  EXPECT_EQ(h.ni_.packets_ejected(), 1u);
  EXPECT_EQ(h.ni_.flits_ejected(), 3u);
}

TEST(NetworkInterface, EjectionReturnsCreditPerFlit) {
  NiHarness h;
  Flit f;
  f.packet_id = 1;
  f.src = 0;
  f.dst = 7;
  f.packet_size = 1;
  f.head = f.tail = true;
  f.vc = 3;
  h.eject_flit.push(f);
  h.cycle();
  h.eject_credit.tick();
  const auto credit = h.eject_credit.pop();
  ASSERT_TRUE(credit.has_value());
  EXPECT_EQ(credit->vc, 3);
}

TEST(NetworkInterface, OutOfOrderFlitViolatesInvariant) {
  NiHarness h;
  Flit f;
  f.packet_id = 5;
  f.src = 0;
  f.dst = 7;
  f.packet_size = 3;
  f.flit_index = 1;  // body arrives with no open packet on the VC
  f.vc = 0;
  h.eject_flit.push(f);
  EXPECT_THROW(h.cycle(), common::InvariantViolation);
}

TEST(NetworkInterface, InterleavedPacketsOnOneVcViolateInvariant) {
  NiHarness h;
  Flit a;
  a.packet_id = 1;
  a.src = 0;
  a.dst = 7;
  a.packet_size = 2;
  a.flit_index = 0;
  a.head = true;
  a.vc = 0;
  h.eject_flit.push(a);
  h.cycle();
  (void)h.eject_credit.pop();
  Flit b = a;
  b.packet_id = 2;  // a second head on the same VC before the first tail
  h.eject_flit.push(b);
  EXPECT_THROW(h.cycle(), common::InvariantViolation);
}

TEST(NetworkInterface, ConstructionValidation) {
  std::vector<PacketRecord> sink;
  EXPECT_THROW(NetworkInterface(0, NiConfig{0, 4}, &sink), std::invalid_argument);
  EXPECT_THROW(NetworkInterface(0, NiConfig{4, 0}, &sink), std::invalid_argument);
  EXPECT_THROW(NetworkInterface(0, NiConfig{4, 4}, nullptr), std::invalid_argument);
  NetworkInterface ni(0, NiConfig{4, 4}, &sink);
  FlitChannel f(1);
  CreditChannel c(1);
  EXPECT_THROW(ni.connect(nullptr, &c, &f, &c), std::invalid_argument);
}

TEST(NetworkInterface, PacketIdsAreNodeUnique) {
  std::vector<PacketRecord> sink;
  NetworkInterface a(1, NiConfig{2, 2}, &sink);
  NetworkInterface b(2, NiConfig{2, 2}, &sink);
  FlitChannel fa(1), fb(1), ea(1), eb(1);
  CreditChannel ca(1), cb(1), ka(1), kb(1);
  a.connect(&fa, &ca, &ea, &ka);
  b.connect(&fb, &cb, &eb, &kb);
  a.enqueue_packet(0, 1, 0, 0);
  b.enqueue_packet(0, 1, 0, 0);
  fa.tick();
  fb.tick();
  a.inject_phase();
  b.inject_phase();
  fa.tick();
  fb.tick();
  const auto flit_a = fa.pop();
  const auto flit_b = fb.pop();
  ASSERT_TRUE(flit_a && flit_b);
  EXPECT_NE(flit_a->packet_id, flit_b->packet_id);
}

}  // namespace
}  // namespace nocdvfs::noc
