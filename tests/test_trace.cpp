// Trace subsystem tests: .noctrace golden bytes, corrupt/truncated-file
// rejection, replay transforms (rate scale, node remap, loop), and the
// headline determinism contract — recording a run and replaying the trace
// under the same policy reproduces the RunResult bit-identically, and one
// trace replayed under RMSD vs DMSD presents the identical packet
// sequence.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "sim/saturation.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "trace/trace.hpp"
#include "trace/trace_traffic.hpp"
#include "traffic/request_reply.hpp"

namespace nocdvfs {
namespace {

namespace fs = std::filesystem;

std::string temp_trace(const std::string& name) {
  return (fs::temp_directory_path() / ("nocdvfs_test_" + name + ".noctrace")).string();
}

trace::TraceHeader small_header(int w = 2, int h = 2) {
  trace::TraceHeader header;
  header.width = static_cast<std::uint16_t>(w);
  header.height = static_cast<std::uint16_t>(h);
  header.flit_bits = 128;
  header.f_node_hz = 1e9;
  return header;
}

std::vector<unsigned char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

TEST(TraceFormat, GoldenBytesAndRoundTrip) {
  const std::string path = temp_trace("golden");
  {
    trace::TraceWriter writer(path, small_header());
    writer.append({0, 0, 3, 4, 0});
    writer.append({5, 1, 2, 20, 1});
    writer.append({5, 2, 0, 1, 0});
    writer.close();
  }

  const std::vector<unsigned char> bytes = file_bytes(path);
  ASSERT_EQ(bytes.size(), 40u + 3u * 12u);
  const unsigned char golden[] = {
      // header
      'N', 'O', 'C', 'T', 'R', 'A', 'C', 'E',  // magic
      1, 0,                                    // version
      40, 0,                                   // header_bytes
      2, 0, 2, 0,                              // width, height
      128, 0, 0, 0,                            // flit_bits
      0, 0, 0, 0,                              // reserved
      0, 0, 0, 0, 0x65, 0xcd, 0xcd, 0x41,      // 1e9 as LE double
      3, 0, 0, 0, 0, 0, 0, 0,                  // packet_count
      // record 0: delta 0, src 0, dst 3, 4 flits, class 0
      0, 0, 0, 0, 0, 0, 3, 0, 4, 0, 0, 0,
      // record 1: delta 5, src 1, dst 2, 20 flits, class 1
      5, 0, 0, 0, 1, 0, 2, 0, 20, 0, 1, 0,
      // record 2: delta 0 (same cycle), src 2, dst 0, 1 flit, class 0
      0, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0};
  ASSERT_EQ(bytes.size(), sizeof(golden));
  for (std::size_t i = 0; i < sizeof(golden); ++i) {
    EXPECT_EQ(bytes[i], golden[i]) << "byte " << i;
  }

  const trace::Trace t = trace::Trace::load(path);
  EXPECT_EQ(t.header.width, 2);
  EXPECT_EQ(t.header.height, 2);
  EXPECT_EQ(t.header.flit_bits, 128u);
  EXPECT_DOUBLE_EQ(t.header.f_node_hz, 1e9);
  ASSERT_EQ(t.packets.size(), 3u);
  EXPECT_EQ(t.packets[0], (trace::TracePacket{0, 0, 3, 4, 0}));
  EXPECT_EQ(t.packets[1], (trace::TracePacket{5, 1, 2, 20, 1}));
  EXPECT_EQ(t.packets[2], (trace::TracePacket{5, 2, 0, 1, 0}));
  EXPECT_EQ(t.total_flits(), 25u);
  EXPECT_EQ(t.span_cycles(), 6u);
  // 25 flits / (6 cycles × 4 nodes)
  EXPECT_DOUBLE_EQ(t.mean_lambda(), 25.0 / 24.0);
  fs::remove(path);
}

TEST(TraceFormat, EmptyTraceRoundTrips) {
  const std::string path = temp_trace("empty");
  { trace::TraceWriter writer(path, small_header()); }
  const trace::Trace t = trace::Trace::load(path);
  EXPECT_TRUE(t.packets.empty());
  EXPECT_EQ(t.span_cycles(), 0u);
  EXPECT_DOUBLE_EQ(t.mean_lambda(), 0.0);

  // Replaying an empty trace is a valid silent workload.
  trace::TraceTraffic model(t);
  EXPECT_DOUBLE_EQ(model.offered_flits_per_node_cycle(), 0.0);
  noc::NetworkConfig ncfg;
  ncfg.width = 2;
  ncfg.height = 2;
  noc::Network net(ncfg);
  for (std::uint64_t i = 0; i < 100; ++i) model.node_tick(i * 1000, 0, net);
  EXPECT_EQ(net.total_flits_generated(), 0u);
  fs::remove(path);
}

TEST(TraceFormat, WriterValidatesRecords) {
  const std::string path = temp_trace("writer_validation");
  trace::TraceWriter writer(path, small_header());
  writer.append({10, 0, 1, 4, 0});
  // Cycles must be non-decreasing.
  EXPECT_THROW(writer.append({9, 0, 1, 4, 0}), std::invalid_argument);
  // Nodes must fit the recorded mesh; packets carry at least one flit.
  EXPECT_THROW(writer.append({10, 4, 1, 4, 0}), std::invalid_argument);
  EXPECT_THROW(writer.append({10, 0, 4, 4, 0}), std::invalid_argument);
  EXPECT_THROW(writer.append({10, 0, 1, 0, 0}), std::invalid_argument);
  writer.close();
  fs::remove(path);
}

TEST(TraceFormat, RejectsCorruptAndTruncatedFiles) {
  const std::string path = temp_trace("corrupt");
  {
    trace::TraceWriter writer(path, small_header());
    writer.append({0, 0, 1, 4, 0});
    writer.append({3, 1, 0, 4, 0});
    writer.close();
  }
  const std::vector<unsigned char> good = file_bytes(path);

  auto write_bytes = [&](const std::vector<unsigned char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };

  // Bad magic.
  auto bad = good;
  bad[0] = 'X';
  write_bytes(bad);
  EXPECT_THROW(trace::TraceReader{path}, std::runtime_error);

  // Unsupported version.
  bad = good;
  bad[8] = 99;
  write_bytes(bad);
  EXPECT_THROW(trace::TraceReader{path}, std::runtime_error);

  // Truncated mid-record.
  bad = good;
  bad.resize(bad.size() - 5);
  write_bytes(bad);
  EXPECT_THROW(trace::TraceReader{path}, std::runtime_error);

  // Trailing garbage.
  bad = good;
  bad.push_back(0);
  write_bytes(bad);
  EXPECT_THROW(trace::TraceReader{path}, std::runtime_error);

  // Header shorter than the format's minimum.
  bad.assign(good.begin(), good.begin() + 20);
  write_bytes(bad);
  EXPECT_THROW(trace::TraceReader{path}, std::runtime_error);

  // Record pointing outside the mesh (corrupt dst on the 2x2 header).
  bad = good;
  bad[40 + 6] = 9;
  write_bytes(bad);
  trace::TraceReader reader(path);
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      std::runtime_error);
  fs::remove(path);
}

/// Drive a TraceTraffic tick by tick and capture the injections (via the
/// same observer hook the recorder uses).
struct Injection {
  std::uint64_t tick;
  noc::NodeId src;
  noc::NodeId dst;
  int flits;
};

std::vector<Injection> drive(trace::TraceTraffic& model, int mesh_w, int mesh_h,
                             std::uint64_t ticks) {
  noc::NetworkConfig ncfg;
  ncfg.width = mesh_w;
  ncfg.height = mesh_h;
  noc::Network net(ncfg);
  std::vector<Injection> out;
  std::uint64_t tick = 0;
  net.set_injection_observer(
      [&](noc::PacketId, noc::NodeId src, noc::NodeId dst, int flits, std::uint8_t) {
        out.push_back({tick, src, dst, flits});
      });
  for (; tick < ticks; ++tick) model.node_tick(tick * 1000, 0, net);
  return out;
}

TEST(TraceTraffic, RateScaleCompressesTheTimeline) {
  trace::Trace t;
  t.header = small_header();
  t.packets = {{0, 0, 1, 4, 0}, {10, 1, 2, 4, 0}, {20, 2, 3, 4, 0}};

  trace::TraceReplayOptions opt;
  opt.scale = 2.0;  // half the span → injections at cycles 0, 5, 10
  trace::TraceTraffic model(t, opt);
  const auto injections = drive(model, 2, 2, 30);
  ASSERT_EQ(injections.size(), 3u);
  EXPECT_EQ(injections[0].tick, 0u);
  EXPECT_EQ(injections[1].tick, 5u);
  EXPECT_EQ(injections[2].tick, 10u);
  // Twice the offered load of the unscaled replay.
  trace::TraceTraffic plain(t);
  EXPECT_NEAR(model.offered_flits_per_node_cycle(),
              2.0 * plain.offered_flits_per_node_cycle(), 0.1);

  trace::TraceReplayOptions slow;
  slow.scale = 0.5;  // twice the span → injections at cycles 0, 20, 40
  trace::TraceTraffic slow_model(t, slow);
  const auto slow_injections = drive(slow_model, 2, 2, 60);
  ASSERT_EQ(slow_injections.size(), 3u);
  EXPECT_EQ(slow_injections[1].tick, 20u);
  EXPECT_EQ(slow_injections[2].tick, 40u);
}

TEST(TraceTraffic, RemapsOntoADifferentMesh) {
  trace::Trace t;
  t.header = small_header(4, 4);
  // src 12 = (0,3), dst 7 = (3,1) on the recorded 4x4 mesh.
  t.packets = {{0, 12, 7, 4, 0}};

  trace::TraceReplayOptions opt;
  opt.mesh_width = 2;
  opt.mesh_height = 2;
  trace::TraceTraffic model(t, opt);
  const auto injections = drive(model, 2, 2, 5);
  ASSERT_EQ(injections.size(), 1u);
  // Coordinate folding: (0,3) → (0,1) = node 2; (3,1) → (1,1) = node 3.
  EXPECT_EQ(injections[0].src, 2);
  EXPECT_EQ(injections[0].dst, 3);
}

TEST(TraceTraffic, LoopRestartsTheStream) {
  trace::Trace t;
  t.header = small_header();
  t.packets = {{0, 0, 1, 4, 0}, {4, 1, 0, 4, 0}};  // span = 5 cycles

  trace::TraceReplayOptions opt;
  opt.loop = true;
  trace::TraceTraffic model(t, opt);
  const auto injections = drive(model, 2, 2, 15);  // three laps
  ASSERT_EQ(injections.size(), 6u);
  EXPECT_EQ(injections[2].tick, 5u);   // lap 1 starts after the span
  EXPECT_EQ(injections[3].tick, 9u);
  EXPECT_EQ(injections[4].tick, 10u);  // lap 2
  EXPECT_EQ(injections[5].tick, 14u);
}

TEST(TraceTraffic, OptionValidation) {
  trace::Trace t;
  t.header = small_header();
  trace::TraceReplayOptions opt;
  opt.scale = 0.0;
  EXPECT_THROW(trace::TraceTraffic(t, opt), std::invalid_argument);
  opt = {};
  opt.mesh_width = 3;  // height missing
  EXPECT_THROW(trace::TraceTraffic(t, opt), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Record → replay determinism
// ---------------------------------------------------------------------------

sim::RunPhases short_phases() {
  sim::RunPhases phases;
  phases.warmup_node_cycles = 8000;
  phases.measure_node_cycles = 12000;
  phases.adaptive_warmup = false;
  return phases;
}

sim::Scenario base_scenario() {
  sim::Scenario s;
  s.network.width = 3;
  s.network.height = 3;
  s.packet_size = 4;
  s.lambda = 0.12;
  s.control_period = 2000;
  s.phases = short_phases();
  s.policy.policy = sim::Policy::Rmsd;
  s.policy.lambda_max = 0.4;
  return s;
}

void expect_identical_headlines(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_DOUBLE_EQ(a.measured_offered_lambda, b.measured_offered_lambda);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.avg_delay_ns, b.avg_delay_ns);
  EXPECT_DOUBLE_EQ(a.p99_delay_ns, b.p99_delay_ns);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_DOUBLE_EQ(a.avg_frequency_hz, b.avg_frequency_hz);
  EXPECT_DOUBLE_EQ(a.power.total_j(), b.power.total_j());
  EXPECT_DOUBLE_EQ(a.delivered_flits_per_node_cycle, b.delivered_flits_per_node_cycle);
  EXPECT_DOUBLE_EQ(a.energy_per_bit_pj, b.energy_per_bit_pj);
  EXPECT_EQ(a.window_trace.size(), b.window_trace.size());
}

/// Replay scenario for a trace recorded by `recorded`: same platform and
/// policy, same mesh, trace workload.
sim::Scenario replay_of(const sim::Scenario& recorded, const std::string& path) {
  sim::Scenario s = recorded;
  s.workload = sim::Scenario::Workload::Trace;
  s.trace_path = path;
  s.record_path.clear();
  s.traffic_factory = nullptr;
  return s;
}

TEST(RecordReplay, SyntheticRoundTripIsBitIdentical) {
  const std::string path = temp_trace("rt_synthetic");
  sim::Scenario rec = base_scenario();
  rec.record_path = path;
  const sim::RunResult original = sim::run(rec);

  rec.record_path.clear();
  const sim::RunResult replayed = sim::run(replay_of(rec, path));
  expect_identical_headlines(original, replayed);
  fs::remove(path);
}

TEST(RecordReplay, AppRoundTripIsBitIdentical) {
  const std::string path = temp_trace("rt_app");
  sim::Scenario rec;
  rec.workload = sim::Scenario::Workload::App;
  rec.app = "h264";
  rec.speed = 0.5;
  rec.packet_size = 8;
  rec.traffic_scale = 0.1 / sim::mean_lambda(rec);
  rec.control_period = 2000;
  rec.phases = short_phases();
  rec.policy.policy = sim::Policy::Dmsd;
  rec.policy.target_delay_ns = 120.0;
  rec.record_path = path;
  const sim::RunResult original = sim::run(rec);

  sim::Scenario rep = replay_of(rec, path);
  // The h264 task graph pinned the recorded mesh to 4x4; the replay
  // scenario must name it explicitly.
  rep.network.width = 4;
  rep.network.height = 4;
  const sim::RunResult replayed = sim::run(rep);
  expect_identical_headlines(original, replayed);
  fs::remove(path);
}

TEST(RecordReplay, RequestReplyRoundTripIsDeterministic) {
  // Closed-loop workloads record faithfully (replies become open-loop
  // packets at their recorded cycles), so the flit streams — and hence
  // throughput — match the original exactly. Delay statistics are NOT
  // compared: the live run stamps replies with the request's creation time
  // (round-trip semantics) while the replay stamps injection time.
  const std::string path = temp_trace("rt_reqrep");
  sim::Scenario rec = base_scenario();
  rec.workload = sim::Scenario::Workload::Custom;
  rec.traffic_factory = [](const sim::Scenario& sc) -> std::unique_ptr<traffic::TrafficModel> {
    noc::MeshTopology topo(sc.network.width, sc.network.height);
    traffic::RequestReplyParams rr;
    rr.request_rate = 0.01;
    rr.seed = sc.seed;
    return std::make_unique<traffic::RequestReplyTraffic>(topo, rr);
  };
  rec.record_path = path;
  const sim::RunResult original = sim::run(rec);
  ASSERT_GT(original.class1_packets, 0u);

  const sim::Scenario rep = replay_of(rec, path);
  const sim::RunResult replay_a = sim::run(rep);
  const sim::RunResult replay_b = sim::run(rep);
  // Same injected stream as the original…
  EXPECT_DOUBLE_EQ(replay_a.measured_offered_lambda, original.measured_offered_lambda);
  EXPECT_EQ(replay_a.packets_delivered, original.packets_delivered);
  EXPECT_DOUBLE_EQ(replay_a.delivered_flits_per_node_cycle,
                   original.delivered_flits_per_node_cycle);
  EXPECT_EQ(replay_a.class1_packets, original.class1_packets);
  // …and the replay itself is bit-identical run to run.
  expect_identical_headlines(replay_a, replay_b);
  fs::remove(path);
}

TEST(RecordReplay, RmsdAndDmsdSeeTheIdenticalPacketSequence) {
  const std::string path = temp_trace("rt_policies");
  sim::Scenario rec = base_scenario();
  rec.policy.policy = sim::Policy::NoDvfs;
  rec.record_path = path;
  sim::run(rec);

  sim::Scenario rep = replay_of(rec, path);
  rep.policy.policy = sim::Policy::Rmsd;
  const sim::RunResult rmsd = sim::run(rep);
  rep.policy.policy = sim::Policy::Dmsd;
  rep.policy.target_delay_ns = 100.0;
  const sim::RunResult dmsd = sim::run(rep);

  // The controllers saw the bit-identical offered stream…
  EXPECT_DOUBLE_EQ(rmsd.measured_offered_lambda, dmsd.measured_offered_lambda);
  // …and delivered (almost) all of it — the policies' different NoC clocks
  // only move which in-flight packets straddle the window edges.
  EXPECT_NEAR(static_cast<double>(rmsd.packets_delivered),
              static_cast<double>(dmsd.packets_delivered),
              0.01 * static_cast<double>(rmsd.packets_delivered));
  // …but regulated it differently.
  EXPECT_NE(rmsd.avg_frequency_hz, dmsd.avg_frequency_hz);
  fs::remove(path);
}

TEST(RecordReplay, TraceSaturationBisectsTheTimeWarp) {
  // trace_scale is the trace workload's load axis: the finder must loop
  // the finite capture (steady-state probes) and expand past scale 1.0 —
  // which only means "as recorded" — to bracket the real saturation warp.
  const std::string path = temp_trace("rt_saturation");
  sim::Scenario rec = base_scenario();
  rec.policy.policy = sim::Policy::NoDvfs;
  rec.record_path = path;
  sim::run(rec);

  sim::SaturationSearchOptions opt;
  opt.warmup_node_cycles = 8000;
  opt.measure_node_cycles = 8000;
  opt.resolution = 0.25;
  const double sat_scale = sim::find_saturation(replay_of(rec, path), opt);
  // The capture was recorded at λ = 0.12, far below a 3×3 mesh's
  // saturation — the warp must come back well above 1 and bounded.
  EXPECT_GT(sat_scale, 1.0);
  EXPECT_LT(sat_scale, 256.0);
  fs::remove(path);
}

TEST(RecordReplay, TraceSweepsThroughParallelWorkers) {
  const std::string path = temp_trace("rt_sweep");
  sim::Scenario rec = base_scenario();
  rec.record_path = path;
  sim::run(rec);

  // Four workers, each replay opens its own reader; rows must agree on the
  // offered stream and be deterministic across thread counts.
  sim::SweepRunner::Options opt;
  opt.threads = 4;
  sim::SweepRunner runner(opt);
  const auto records =
      runner.run(replay_of(rec, path),
                 {sim::SweepAxis::policies({sim::Policy::NoDvfs, sim::Policy::Rmsd,
                                            sim::Policy::Dmsd, sim::Policy::Qbsd})},
                 "trace-replay");
  ASSERT_EQ(records.size(), 4u);
  for (const auto& record : records) {
    EXPECT_DOUBLE_EQ(record.result.measured_offered_lambda,
                     records[0].result.measured_offered_lambda);
  }
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Satellite coverage: sweep validation + derived efficiency metrics
// ---------------------------------------------------------------------------

TEST(SweepValidation, CustomWithoutFactoryNamesThePoint) {
  sim::Scenario bad = base_scenario();
  bad.workload = sim::Scenario::Workload::Custom;
  sim::SweepRunner runner;
  try {
    runner.run(bad, {sim::SweepAxis::policies({sim::Policy::Rmsd})}, "my-sweep");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("policy=rmsd"), std::string::npos) << msg;
    EXPECT_NE(msg.find("my-sweep"), std::string::npos) << msg;
    EXPECT_NE(msg.find("traffic_factory"), std::string::npos) << msg;
  }
}

TEST(SweepValidation, TraceWithoutPathNamesThePoint) {
  sim::Scenario bad = base_scenario();
  bad.workload = sim::Scenario::Workload::Trace;
  sim::SweepRunner runner;
  try {
    runner.run(bad, {sim::SweepAxis::seeds(2, 1)}, "replay-sweep");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("replay-sweep"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trace"), std::string::npos) << msg;
  }
}

TEST(SweepValidation, SharedRecordPathAcrossPointsIsRejected) {
  sim::Scenario bad = base_scenario();
  bad.record_path = temp_trace("shared_record");
  sim::SweepRunner runner;
  try {
    runner.run(bad, {sim::SweepAxis::seeds(2, 1)}, "record-sweep");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("record"), std::string::npos) << msg;
  }
  // A single-point "sweep" may record.
  const auto records = runner.run(bad, {}, "record-one");
  EXPECT_EQ(records.size(), 1u);
  fs::remove(bad.record_path);
}

TEST(EfficiencyMetrics, EnergyPerBitAndEdpAreDerivedConsistently) {
  sim::Scenario s = base_scenario();
  const sim::RunResult r = sim::run(s);
  ASSERT_GT(r.packets_delivered, 0u);
  EXPECT_GT(r.energy_per_bit_pj, 0.0);
  EXPECT_GT(r.energy_delay_product_js, 0.0);
  // energy/bit × delivered bits == total energy (flit_bits = 128).
  const double delivered_bits =
      r.delivered_flits_per_node_cycle * 9.0 *
      static_cast<double>(r.measure_node_cycles) * 128.0;
  EXPECT_NEAR(r.energy_per_bit_pj * delivered_bits * 1e-12, r.power.total_j(),
              1e-6 * r.power.total_j());
  EXPECT_NEAR(r.energy_delay_product_js, r.power.total_j() * r.avg_delay_ns * 1e-9,
              1e-12);
}

}  // namespace
}  // namespace nocdvfs
