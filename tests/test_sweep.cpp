// SweepRunner tests: cross-product expansion order, axis factories,
// serial-vs-parallel determinism (the same Scenario + seed must produce
// bit-identical RunResults regardless of thread count), sink output, and
// error propagation out of the worker pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/sweep.hpp"

namespace nocdvfs::sim {
namespace {

Scenario tiny() {
  Scenario s;
  s.network.width = 3;
  s.network.height = 3;
  s.packet_size = 4;
  s.lambda = 0.08;
  s.control_period = 2000;
  s.phases.warmup_node_cycles = 5000;
  s.phases.measure_node_cycles = 8000;
  s.phases.adaptive_warmup = false;
  return s;
}

TEST(SweepExpand, RowMajorCrossProduct) {
  const auto points = SweepRunner::expand(
      tiny(), {SweepAxis::lambda({0.05, 0.1}),
               SweepAxis::policies({Policy::NoDvfs, Policy::Rmsd, Policy::Dmsd})});
  ASSERT_EQ(points.size(), 6u);
  // Outer axis (lambda) varies slowest.
  EXPECT_DOUBLE_EQ(points[0].scenario.lambda, 0.05);
  EXPECT_EQ(points[0].scenario.policy.policy, Policy::NoDvfs);
  EXPECT_EQ(points[2].scenario.policy.policy, Policy::Dmsd);
  EXPECT_DOUBLE_EQ(points[3].scenario.lambda, 0.1);
  EXPECT_EQ(points[3].scenario.policy.policy, Policy::NoDvfs);
  // Coordinates carry the axis labels in axis order.
  ASSERT_EQ(points[5].coordinates.size(), 2u);
  EXPECT_EQ(points[5].coordinates[1], "dmsd");
  EXPECT_EQ(points[5].index, 5u);
}

TEST(SweepExpand, SeedAxisAndEmptyAxisRejection) {
  const auto points = SweepRunner::expand(tiny(), {SweepAxis::seeds(3, 10)});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].scenario.seed, 10u);
  EXPECT_EQ(points[2].scenario.seed, 12u);

  EXPECT_THROW(SweepRunner::expand(tiny(), {SweepAxis::lambda({})}),
               std::invalid_argument);
}

TEST(SweepExpand, NoAxesMeansSingleBasePoint) {
  const auto points = SweepRunner::expand(tiny(), {});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].coordinates.empty());
}

// The determinism contract of the issue: the same Scenario + seed produces
// bit-identical RunResults whether executed serially or through the
// multi-threaded SweepRunner (threads only change who runs which index,
// never the per-run RNG streams or the result order).
TEST(SweepRun, ParallelMatchesSerialBitIdentically) {
  const Scenario base = tiny();
  const std::vector<SweepAxis> axes = {
      SweepAxis::lambda({0.05, 0.1, 0.15}),
      SweepAxis::policies({Policy::NoDvfs, Policy::Rmsd, Policy::Dmsd})};

  SweepRunner::Options serial_opt;
  serial_opt.threads = 1;
  SweepRunner serial(serial_opt);
  const auto serial_recs = serial.run(base, axes);

  SweepRunner::Options parallel_opt;
  parallel_opt.threads = 4;
  SweepRunner parallel(parallel_opt);
  const auto parallel_recs = parallel.run(base, axes);

  ASSERT_EQ(serial_recs.size(), parallel_recs.size());
  for (std::size_t i = 0; i < serial_recs.size(); ++i) {
    const RunResult& a = serial_recs[i].result;
    const RunResult& b = parallel_recs[i].result;
    EXPECT_EQ(a.avg_delay_ns, b.avg_delay_ns) << "point " << i;
    EXPECT_EQ(a.p99_delay_ns, b.p99_delay_ns) << "point " << i;
    EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles) << "point " << i;
    EXPECT_EQ(a.packets_delivered, b.packets_delivered) << "point " << i;
    EXPECT_EQ(a.avg_frequency_hz, b.avg_frequency_hz) << "point " << i;
    EXPECT_EQ(a.avg_voltage, b.avg_voltage) << "point " << i;
    EXPECT_EQ(a.power_mw(), b.power_mw()) << "point " << i;
    EXPECT_EQ(a.delivered_flits_per_node_cycle, b.delivered_flits_per_node_cycle)
        << "point " << i;
    EXPECT_EQ(a.measured_offered_lambda, b.measured_offered_lambda) << "point " << i;
    ASSERT_EQ(a.vf_trace.size(), b.vf_trace.size()) << "point " << i;
    for (std::size_t j = 0; j < a.vf_trace.size(); ++j) {
      EXPECT_EQ(a.vf_trace[j].t, b.vf_trace[j].t);
      EXPECT_EQ(a.vf_trace[j].f, b.vf_trace[j].f);
      EXPECT_EQ(a.vf_trace[j].vdd, b.vf_trace[j].vdd);
    }
  }
}

TEST(SweepRun, RecordsArriveInRowMajorOrderRegardlessOfCompletion) {
  // Mix cheap and expensive points so completion order differs from index
  // order; records must still come back row-major.
  SweepRunner::Options opt;
  opt.threads = 4;
  SweepRunner runner(opt);
  Scenario slow = tiny();
  slow.phases.measure_node_cycles = 20000;
  const auto recs =
      runner.run(slow, {SweepAxis::lambda({0.15, 0.05, 0.1}), SweepAxis::seeds(2, 1)});
  ASSERT_EQ(recs.size(), 6u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].point.index, i);
  }
  EXPECT_DOUBLE_EQ(recs[0].point.scenario.lambda, 0.15);
  EXPECT_EQ(recs[1].point.scenario.seed, 2u);
  EXPECT_DOUBLE_EQ(recs[4].point.scenario.lambda, 0.1);
}

TEST(SweepRun, WorkerExceptionsPropagate) {
  Scenario bad = tiny();
  bad.pattern = "vortex";  // unknown pattern → the run throws in a worker
  SweepRunner::Options opt;
  opt.threads = 2;
  SweepRunner runner(opt);
  EXPECT_THROW(runner.run(bad, {SweepAxis::seeds(4, 1)}), std::invalid_argument);
}

TEST(SweepSinks, CsvHasHeaderAndOneRowPerRun) {
  std::ostringstream csv;
  CsvResultSink sink(csv);
  SweepRunner runner;
  runner.add_sink(sink);
  runner.run(tiny(), {SweepAxis::policies({Policy::NoDvfs, Policy::Rmsd})}, "unit-test");

  std::istringstream in(csv.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header + 2 rows
  EXPECT_EQ(lines[0].rfind("group,index,point", 0), 0u);
  EXPECT_NE(lines[1].find("unit-test,0,"), std::string::npos);
  EXPECT_NE(lines[1].find("nodvfs"), std::string::npos);
  EXPECT_NE(lines[2].find("rmsd"), std::string::npos);
}

TEST(SweepSinks, JsonlCarriesTrajectories) {
  std::ostringstream jsonl;
  JsonlResultSink sink(jsonl, /*include_traces=*/true);
  SweepRunner runner;
  runner.add_sink(sink);
  runner.run(tiny(), {SweepAxis::policies({Policy::Rmsd})}, "unit-test");

  const std::string out = jsonl.str();
  EXPECT_NE(out.find("\"group\":\"unit-test\""), std::string::npos);
  EXPECT_NE(out.find("\"policy\":\"rmsd\""), std::string::npos);
  EXPECT_NE(out.find("\"window_trace\":["), std::string::npos);
  EXPECT_NE(out.find("\"vf_trace\":["), std::string::npos);
  // One JSON object per line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

/// Feeds the sink a hand-built record whose escaped string fields carry
/// every character class the escaper must handle: the stream must stay one
/// valid JSON object per line.
TEST(SweepSinks, JsonlEscapesHostileStrings) {
  std::ostringstream jsonl;
  JsonlResultSink sink(jsonl, /*include_traces=*/false);
  sink.begin_sweep("group \"quoted\"\\back", {});

  SweepRecord rec;
  rec.point.index = 0;
  rec.point.coordinates = {"label\twith\ttabs", "newline\nlabel"};
  rec.point.scenario.pattern = "uni\xc3\xa9orm";          // "uniéorm": UTF-8 passthrough
  rec.point.scenario.app = "app\\path\"x\"";              // backslashes + quotes
  rec.point.scenario.islands = "quad\x01rants";           // C0 control char
  rec.point.scenario.network.faults = "links:1";
  sink.on_result(rec);

  const std::string out = jsonl.str();
  ASSERT_EQ(std::count(out.begin(), out.end(), '\n'), 1);

  // Escaped forms appear; raw unescaped forms don't.
  EXPECT_NE(out.find("\"group \\\"quoted\\\"\\\\back\""), std::string::npos) << out;
  EXPECT_NE(out.find("label\\twith\\ttabs"), std::string::npos) << out;
  EXPECT_NE(out.find("newline\\nlabel"), std::string::npos) << out;
  EXPECT_NE(out.find("app\\\\path\\\"x\\\""), std::string::npos) << out;
  EXPECT_NE(out.find("quad\\u0001rants"), std::string::npos) << out;
  EXPECT_NE(out.find("uni\xc3\xa9orm"), std::string::npos) << out;  // bytes intact
  EXPECT_EQ(out.find('\t'), std::string::npos);
  EXPECT_EQ(out.find('\x01'), std::string::npos);

  // Structural sanity: no control characters inside, and the line's quotes
  // are balanced once escapes are discounted.
  std::size_t unescaped_quotes = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char ch = out[i];
    if (static_cast<unsigned char>(ch) < 0x20 && ch != '\n') {
      ADD_FAILURE() << "raw control char at offset " << i;
    }
    if (ch == '\\') {
      ++i;  // skip escaped char
    } else if (ch == '"') {
      ++unescaped_quotes;
    }
  }
  EXPECT_EQ(unescaped_quotes % 2, 0u);
}

TEST(SweepPointLabel, JoinsAxisNamesAndCoordinates) {
  const auto points = SweepRunner::expand(
      tiny(), {SweepAxis::lambda({0.05}), SweepAxis::policies({Policy::Dmsd})});
  const std::vector<SweepAxis> axes = {SweepAxis::lambda({0.05}),
                                       SweepAxis::policies({Policy::Dmsd})};
  EXPECT_EQ(points[0].label(axes), "lambda=0.05 policy=dmsd");
}

}  // namespace
}  // namespace nocdvfs::sim
