// Thermal subsystem tests: the RC network's physics (steady state,
// monotone heating, symmetry, stability-bound enforcement), the
// Arrhenius-style temperature-dependent leakage, the hysteretic
// ThermalGuard and the DvfsManager frequency cap, per-tile power
// attribution, and whole-simulator runs with the feedback loop closed —
// including the hard invariant that thermal=off reproduces the
// temperature-blind simulator bit-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "dvfs/controller.hpp"
#include "dvfs/dvfs_manager.hpp"
#include "dvfs/thermal_guard.hpp"
#include "power/energy_model.hpp"
#include "power/power_model.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "thermal/thermal_model.hpp"

namespace nocdvfs {
namespace {

using common::Picoseconds;
using thermal::ThermalModel;
using thermal::ThermalParams;

// ---------------------------------------------------------------------------
// ThermalModel: RC network physics
// ---------------------------------------------------------------------------

ThermalParams fast_params() {
  ThermalParams p;  // defaults, but no leakage feedback unless a test wants it
  p.leak_temp_coeff_per_k = 0.0;
  return p;
}

TEST(ThermalModel, ZeroPowerStaysAtAmbient) {
  ThermalModel m(3, 3, fast_params(), 1'000'000);
  const std::vector<double> zero(9, 0.0);
  m.advance(500'000'000, zero, zero);  // 500 us
  for (int t = 0; t < 9; ++t) EXPECT_DOUBLE_EQ(m.tile_temp_c(t), 45.0) << "tile " << t;
  EXPECT_DOUBLE_EQ(m.spreader_temp_c(), 45.0);
}

TEST(ThermalModel, SingleTileReachesAnalyticSteadyState) {
  // A 1x1 mesh is a plain series RC chain: tile --R_v-- spreader --R_spr--
  // ambient, so T_tile(inf) = ambient + P*(R_v + R_spr).
  ThermalParams p = fast_params();
  ThermalModel m(1, 1, p, 1'000'000);
  const std::vector<double> drive{0.010};  // 10 mW
  const std::vector<double> zero{0.0};
  m.advance(2'000'000'000, drive, zero);  // 2 ms >> all time constants
  const double expect = p.ambient_c + 0.010 * (p.rc_vertical_k_per_w + p.r_spreader_k_per_w);
  EXPECT_NEAR(m.tile_temp_c(0), expect, 0.01 * (expect - p.ambient_c));
  EXPECT_NEAR(m.spreader_temp_c(), p.ambient_c + 0.010 * p.r_spreader_k_per_w, 0.05);
}

TEST(ThermalModel, HeatingIsMonotoneTowardsSteadyState) {
  ThermalModel m(1, 1, fast_params(), 1'000'000);
  const std::vector<double> drive{0.010};
  const std::vector<double> zero{0.0};
  double prev = m.tile_temp_c(0);
  for (int step = 1; step <= 50; ++step) {
    m.advance(static_cast<Picoseconds>(step) * 10'000'000, drive, zero);  // +10 us
    const double now = m.tile_temp_c(0);
    EXPECT_GT(now, prev) << "step " << step;
    prev = now;
  }
}

TEST(ThermalModel, UniformPowerEqualizesTiles) {
  // Every tile has the same drive and the same vertical path into one
  // shared spreader, so lateral flows vanish by symmetry and all tiles
  // settle at exactly the same temperature — above ambient.
  ThermalModel m(3, 3, fast_params(), 1'000'000);
  const std::vector<double> drive(9, 0.005);
  const std::vector<double> zero(9, 0.0);
  m.advance(1'000'000'000, drive, zero);
  for (int t = 1; t < 9; ++t) EXPECT_DOUBLE_EQ(m.tile_temp_c(t), m.tile_temp_c(0));
  EXPECT_GT(m.tile_temp_c(0), fast_params().ambient_c + 1.0);
}

TEST(ThermalModel, LateralConductanceSpreadsAHotspot) {
  ThermalModel m(3, 1, fast_params(), 1'000'000);
  const std::vector<double> drive{0.0, 0.012, 0.0};  // center tile only
  const std::vector<double> zero(3, 0.0);
  m.advance(1'000'000'000, drive, zero);
  EXPECT_GT(m.tile_temp_c(1), m.tile_temp_c(0));
  EXPECT_GT(m.tile_temp_c(0), fast_params().ambient_c);  // neighbours warmed laterally
  EXPECT_DOUBLE_EQ(m.tile_temp_c(0), m.tile_temp_c(2));
}

TEST(ThermalModel, StabilityBoundIsEnforcedWithMessage) {
  const ThermalParams p = fast_params();
  const double bound_s = ThermalModel::stability_bound_s(5, 5, p);
  const auto bound_ps = static_cast<Picoseconds>(bound_s * 1e12);
  EXPECT_NO_THROW(ThermalModel(5, 5, p, bound_ps - 1000));
  try {
    ThermalModel m(5, 5, p, 2 * bound_ps);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stability bound"), std::string::npos);
  }
  EXPECT_THROW(ThermalModel(0, 3, p, 1000), std::invalid_argument);
  ThermalParams bad = p;
  bad.c_tile_j_per_k = 0.0;
  EXPECT_THROW(ThermalModel(3, 3, bad, 1000), std::invalid_argument);
}

TEST(ThermalModel, LeakageEnergyMatchesNominalWithoutTemperatureFeedback) {
  // With k = 0 the charged leakage equals nominal power x time exactly,
  // and the "reference" counter agrees with the resolved one.
  ThermalModel m(2, 2, fast_params(), 1'000'000);
  const std::vector<double> zero(4, 0.0);
  const std::vector<double> leak(4, 0.002);
  m.advance(100'000'000, zero, leak);  // 100 us
  for (int t = 0; t < 4; ++t) {
    EXPECT_NEAR(m.tile_leakage_j()[static_cast<std::size_t>(t)], 0.002 * 100e-6, 1e-12);
    EXPECT_DOUBLE_EQ(m.tile_leakage_j()[static_cast<std::size_t>(t)],
                     m.tile_leakage_ref_j()[static_cast<std::size_t>(t)]);
  }
}

TEST(ThermalModel, HotTilesLeakMoreThanReference) {
  ThermalParams p = fast_params();
  p.leak_temp_coeff_per_k = 0.04;
  ThermalModel m(1, 1, p, 1'000'000);
  // ~20 K steady-state rise: comfortably inside the regenerative-feedback
  // stability region (R·P_leak·k·exp(k·dT) << 1).
  const std::vector<double> drive{0.005};
  const std::vector<double> leak{0.0005};
  m.advance(500'000'000, drive, leak);
  EXPECT_GT(m.tile_leakage_j()[0], m.tile_leakage_ref_j()[0]);
  // The resolved energy must exceed the reference materially, not by
  // epsilon (exp(0.04 * ~20 K) is >2 at steady state).
  EXPECT_GT(m.tile_leakage_j()[0], 1.2 * m.tile_leakage_ref_j()[0]);
}

TEST(ThermalModel, RegenerativeRunawayStaysFiniteAtTheScaleCeiling) {
  // Past the point where R·P_leak·k·exp(k·dT) > 1 the network has no
  // finite fixed point; the documented kMaxLeakTempScale ceiling keeps the
  // integration finite (and obviously out of any throttle band) instead
  // of overflowing to inf.
  ThermalParams p = fast_params();
  p.leak_temp_coeff_per_k = 0.04;
  ThermalModel m(1, 1, p, 1'000'000);
  const std::vector<double> drive{0.010};
  const std::vector<double> leak{0.005};  // regenerative at this R
  m.advance(2'000'000'000, drive, leak);
  EXPECT_TRUE(std::isfinite(m.tile_temp_c(0)));
  EXPECT_TRUE(std::isfinite(m.tile_leakage_j()[0]));
  // Bounded by the ceiling's fixed point: ambient + R·(P_dyn + 32·P_leak).
  const double r_total = p.rc_vertical_k_per_w + p.r_spreader_k_per_w;
  EXPECT_LT(m.tile_temp_c(0), p.ambient_c + r_total * (0.010 + 32.0 * 0.005) + 1.0);
  EXPECT_GT(m.tile_temp_c(0), 200.0);  // far beyond any operating point
}

TEST(ThermalModel, WindowStatsTrackPeakAndReset) {
  ThermalModel m(2, 1, fast_params(), 1'000'000);
  const std::vector<double> drive{0.010, 0.0};
  const std::vector<double> zero(2, 0.0);
  m.advance(200'000'000, drive, zero);
  const double hot = m.tile_temp_c(0);
  EXPECT_NEAR(m.window_peak_c(), hot, 1e-9);
  // Cooling: stats reset re-bases the peak at the current temperature.
  m.reset_stats();
  m.advance(400'000'000, zero, zero);
  EXPECT_NEAR(m.window_peak_c(), hot, 1e-9);  // peak was at the reset instant
  EXPECT_LT(m.tile_temp_c(0), hot);
  EXPECT_LT(m.window_mean_c(), hot);
}

// ---------------------------------------------------------------------------
// EnergyModel: Arrhenius-style leakage scale
// ---------------------------------------------------------------------------

TEST(EnergyModelThermal, TemperatureScaleAnchorsAndDoubling) {
  const power::EnergyModel m(power::EnergyModel::reference_geometry());
  const double t_ref_k = thermal::kelvin_from_celsius(45.0);
  // At the reference temperature the overloads agree exactly.
  EXPECT_DOUBLE_EQ(m.leakage_scale(0.9, t_ref_k), m.leakage_scale(0.9));
  EXPECT_DOUBLE_EQ(m.leakage_scale(0.56, t_ref_k), m.leakage_scale(0.56));
  // Default coefficient 0.04/K doubles leakage every ln2/0.04 K.
  const double doubling_k = std::log(2.0) / 0.04;
  EXPECT_NEAR(m.leakage_scale(0.9, t_ref_k + doubling_k), 2.0 * m.leakage_scale(0.9), 1e-9);
  // And halves it the same distance below.
  EXPECT_NEAR(m.leakage_scale(0.9, t_ref_k - doubling_k), 0.5 * m.leakage_scale(0.9), 1e-9);
  // Voltage and temperature factors compose multiplicatively.
  EXPECT_NEAR(m.leakage_scale(0.56, t_ref_k + doubling_k), 2.0 * m.leakage_scale(0.56), 1e-9);
}

// ---------------------------------------------------------------------------
// TilePowerAccumulator: per-tile attribution
// ---------------------------------------------------------------------------

TEST(TilePowerAccumulator, TileEnergiesSumToAggregateAccumulator) {
  const power::EnergyModel m(power::EnergyModel::reference_geometry());
  // Two tiles that together form the inventory {2 routers, 3 links, 4 locals}.
  std::vector<power::TileInventory> tiles{{1, 2}, {2, 2}};
  power::TilePowerAccumulator tile_acc(m, tiles);
  power::PowerAccumulator agg(m, power::NetworkInventory{2, 3, 4});

  std::vector<power::ActivityCounters> a0(2);
  std::vector<std::uint64_t> c0{0, 0};
  tile_acc.start(0, a0, c0);
  agg.start(0, a0[0] + a0[1], 0, 0.8, 8e8);

  std::vector<power::ActivityCounters> a1(2);
  a1[0].buffer_writes = 500;
  a1[1].crossbar_traversals = 300;
  std::vector<std::uint64_t> c1{800, 800};
  tile_acc.sample(1'000'000, a1, c1, {0.8, 0.8}, /*accumulate=*/true);
  agg.stop(1'000'000, a1[0] + a1[1], 800);

  // Datapath and clock attribute exactly; tile leakage is injected by the
  // thermal model, so compare the nominal drive power against the
  // aggregate's leakage-energy/duration instead.
  const auto& t = tile_acc.tiles();
  EXPECT_NEAR(t[0].datapath_j + t[1].datapath_j, agg.breakdown().datapath_j, 1e-18);
  EXPECT_NEAR(t[0].clock_j + t[1].clock_j, agg.breakdown().clock_j, 1e-18);
  const double nominal_leak_w = tile_acc.leakage_nominal_w()[0] + tile_acc.leakage_nominal_w()[1];
  EXPECT_NEAR(nominal_leak_w * 1e-6, agg.breakdown().leakage_j, 1e-15);
}

// ---------------------------------------------------------------------------
// ThermalGuard + DvfsManager cap
// ---------------------------------------------------------------------------

TEST(ThermalGuard, HystereticEngageAndRelease) {
  dvfs::ThermalGuardConfig cfg;
  cfg.temp_cap_c = 80.0;
  cfg.hysteresis_c = 5.0;
  dvfs::ThermalGuard guard(cfg, 2);

  EXPECT_FALSE(guard.observe(0, 79.9));
  EXPECT_TRUE(guard.observe(0, 80.0));   // engage at the cap
  EXPECT_TRUE(guard.observe(0, 78.0));   // inside the band: still throttled
  EXPECT_TRUE(guard.observe(0, 75.1));
  EXPECT_FALSE(guard.observe(0, 75.0));  // release at cap - hysteresis
  EXPECT_TRUE(guard.observe(0, 81.0));   // re-engage
  EXPECT_EQ(guard.engage_count(0), 2u);
  // Islands are independent.
  EXPECT_FALSE(guard.throttled(1));
  EXPECT_EQ(guard.engage_count(1), 0u);

  EXPECT_THROW(dvfs::ThermalGuard(cfg, 0), std::invalid_argument);
  cfg.hysteresis_c = -1.0;
  EXPECT_THROW(dvfs::ThermalGuard(cfg, 1), std::invalid_argument);
}

TEST(VfCurveThermal, FloorFrequencyRoundsDown) {
  const power::VfCurve cont = power::VfCurve::fdsoi28();
  EXPECT_DOUBLE_EQ(cont.floor_frequency(5e8), 5e8);  // continuous: clamp only
  EXPECT_DOUBLE_EQ(cont.floor_frequency(2e9), cont.f_max());
  EXPECT_DOUBLE_EQ(cont.floor_frequency(1e6), cont.f_min());

  const power::VfCurve quant = power::VfCurve::fdsoi28().quantized(4);
  const double step = (quant.f_max() - quant.f_min()) / 3.0;
  const double request = quant.f_min() + 1.6 * step;
  EXPECT_NEAR(quant.floor_frequency(request), quant.levels()[1], 1.0);  // down, not up
  EXPECT_NEAR(quant.floor_frequency(quant.levels()[2]), quant.levels()[2], 1.0);
  EXPECT_NEAR(quant.floor_frequency(0.0), quant.f_min(), 1.0);
}

TEST(DvfsManagerThermal, CapClampsAndZeroCapIsIdentity) {
  // NoDvfs always requests f_max, so the cap is what limits it.
  dvfs::DvfsManager capped(std::make_unique<dvfs::NoDvfsController>(),
                           power::VfCurve::fdsoi28(), 1e9, 1000);
  dvfs::DvfsManager free_run(std::make_unique<dvfs::NoDvfsController>(),
                             power::VfCurve::fdsoi28(), 1e9, 1000);
  dvfs::WindowMeasurements m;
  m.window_node_cycles = 1000;

  EXPECT_DOUBLE_EQ(capped.apply_update(0, m, 5e8), 5e8);
  EXPECT_DOUBLE_EQ(capped.current_voltage(), power::VfCurve::fdsoi28().voltage_for(5e8));
  // Releasing the cap returns to the request.
  EXPECT_DOUBLE_EQ(capped.apply_update(1000, m, 0.0), free_run.apply_update(1000, m));
  EXPECT_DOUBLE_EQ(capped.current_frequency(), free_run.current_frequency());
  EXPECT_DOUBLE_EQ(capped.current_voltage(), free_run.current_voltage());
  // A cap below f_min floors at f_min (the curve cannot go lower).
  EXPECT_DOUBLE_EQ(capped.apply_update(2000, m, 1e6), power::VfCurve::fdsoi28().f_min());
}

// ---------------------------------------------------------------------------
// Whole-simulator runs
// ---------------------------------------------------------------------------

sim::Scenario thermal_scenario() {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.pattern = "hotspot";
  s.hotspot_fraction = 0.3;
  s.lambda = 0.15;
  s.seed = 11;
  s.policy.policy = sim::Policy::Rmsd;
  s.policy.lambda_max = 0.35;
  s.control_period = 5000;
  s.phases.warmup_node_cycles = 40000;
  s.phases.measure_node_cycles = 40000;
  s.phases.max_warmup_node_cycles = 200000;
  return s;
}

TEST(ThermalIntegration, OffPathIsBitIdenticalToUntouchedScenario) {
  // The hard invariant: a scenario that sets thermal=off (the default) and
  // even perturbs the other thermal keys must reproduce the run of a
  // scenario that never touched them, bit for bit.
  sim::Scenario plain = thermal_scenario();
  sim::Scenario keyed = thermal_scenario();
  keyed.thermal = false;
  keyed.temp_cap_c = 60.0;
  keyed.rc_vertical = 900.0;
  keyed.leak_temp_coeff = 0.1;

  const sim::RunResult a = sim::run(plain);
  const sim::RunResult b = sim::run(keyed);
  const double va[] = {a.avg_delay_ns,  a.p99_delay_ns,      a.avg_frequency_hz,
                       a.avg_voltage,   a.power.datapath_j,  a.power.clock_j,
                       a.power.leakage_j, a.delivered_flits_per_node_cycle,
                       a.energy_per_bit_pj, a.avg_buffer_occupancy};
  const double vb[] = {b.avg_delay_ns,  b.p99_delay_ns,      b.avg_frequency_hz,
                       b.avg_voltage,   b.power.datapath_j,  b.power.clock_j,
                       b.power.leakage_j, b.delivered_flits_per_node_cycle,
                       b.energy_per_bit_pj, b.avg_buffer_occupancy};
  EXPECT_EQ(0, std::memcmp(va, vb, sizeof(va)));
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_FALSE(b.thermal.enabled);
  EXPECT_EQ(b.thermal.tile_peak_temp_c.size(), 0u);
}

TEST(ThermalIntegration, ClosedLoopHeatsBoundsAndSplitsEnergy) {
  sim::Scenario s = thermal_scenario();
  s.thermal = true;
  const sim::RunResult r = sim::run(s);

  ASSERT_TRUE(r.thermal.enabled);
  ASSERT_EQ(r.thermal.tile_peak_temp_c.size(), 16u);
  // Temperatures: above ambient (the NoC burns power), below the cap
  // (85 C default is far above what this load can reach).
  EXPECT_GT(r.thermal.peak_temp_c, s.temp_ambient_c + 0.5);
  EXPECT_LT(r.thermal.peak_temp_c, s.temp_cap_c);
  EXPECT_GE(r.thermal.peak_temp_c, r.thermal.mean_temp_c);
  EXPECT_GE(r.thermal.mean_temp_c, s.temp_ambient_c);
  for (const double t : r.thermal.tile_peak_temp_c) {
    EXPECT_GE(t, s.temp_ambient_c);
    EXPECT_LE(t, r.thermal.peak_temp_c);
  }
  // The RunResult leakage is the temperature-resolved figure, and it sits
  // strictly inside its Arrhenius bounds: every tile ran between ambient
  // (= the leakage reference temperature) and the window peak.
  EXPECT_NEAR(r.thermal.leakage_j, r.power.leakage_j, 1e-15);
  EXPECT_GT(r.thermal.leakage_j, r.thermal.leakage_ref_j);
  const double scale_at_peak =
      std::exp(s.leak_temp_coeff * (r.thermal.peak_temp_c - s.temp_ambient_c));
  EXPECT_LE(r.thermal.leakage_j, scale_at_peak * r.thermal.leakage_ref_j);
  // No throttling at the default cap.
  EXPECT_EQ(r.thermal.throttle_events, 0u);
  EXPECT_DOUBLE_EQ(r.thermal.throttle_residency, 0.0);
  // Island slice mirrors the run for the single global domain.
  ASSERT_EQ(r.islands.size(), 1u);
  EXPECT_DOUBLE_EQ(r.islands[0].peak_temp_c, r.thermal.peak_temp_c);
  EXPECT_NEAR(r.islands[0].power.total_j(), r.power.total_j(), 1e-15);
}

TEST(ThermalIntegration, LowCapThrottlesAndStaysInBand) {
  sim::Scenario hot = thermal_scenario();
  hot.thermal = true;
  const sim::RunResult free_run = sim::run(hot);
  ASSERT_GT(free_run.thermal.peak_temp_c, hot.temp_ambient_c + 1.0);

  // Cap well below the free-running peak so the guard must engage.
  sim::Scenario capped = hot;
  capped.temp_cap_c =
      hot.temp_ambient_c + 0.5 * (free_run.thermal.peak_temp_c - hot.temp_ambient_c);
  const sim::RunResult r = sim::run(capped);

  EXPECT_GT(r.thermal.throttle_residency, 0.0);
  EXPECT_GT(r.thermal.throttle_events, 0u);
  EXPECT_GT(r.islands[0].throttle_residency, 0.0);
  // The acceptance band: ambient <= T <= cap + hysteresis.
  for (const double t : r.thermal.tile_peak_temp_c) {
    EXPECT_GE(t, capped.temp_ambient_c);
    EXPECT_LE(t, capped.temp_cap_c + capped.temp_hysteresis_c);
  }
  // Throttling costs frequency and delay but cuts energy.
  EXPECT_LT(r.avg_frequency_hz, free_run.avg_frequency_hz);
  EXPECT_LT(r.power.total_j(), free_run.power.total_j());
}

TEST(ThermalIntegration, QuadrantIslandsThrottleIndependently) {
  sim::Scenario s = thermal_scenario();
  s.network.width = 4;
  s.network.height = 4;
  s.islands = "quadrants";
  s.thermal = true;
  // RMSD keeps the sensing signal local to each island: throttling the hot
  // quadrant does not change the others' offered rate, so their frequency
  // (and temperature) stays put — the cleanest independence probe. (DMSD
  // would couple the islands through the delay signal: a throttled hot
  // quadrant raises delays network-wide and the cool quadrants ramp up.)
  const sim::RunResult free_run = sim::run(s);
  ASSERT_EQ(free_run.islands.size(), 4u);

  // Per-island peaks cover the global peak.
  double max_island_peak = 0.0;
  for (const auto& isl : free_run.islands) {
    max_island_peak = std::max(max_island_peak, isl.peak_temp_c);
  }
  EXPECT_DOUBLE_EQ(max_island_peak, free_run.thermal.peak_temp_c);
  // Island energies still sum to the total in the thermal path.
  double sum = 0.0;
  for (const auto& isl : free_run.islands) sum += isl.power.total_j();
  EXPECT_NEAR(sum, free_run.power.total_j(), 1e-12 * std::max(1.0, free_run.power.total_j()));

  // The quadrant holding the hotspot — node (2,2), island 3 on a 4×4
  // quadrant split — runs hotter than the coolest quadrant.
  int hot = 0, cold = 0;
  for (int i = 1; i < 4; ++i) {
    if (free_run.islands[static_cast<std::size_t>(i)].peak_temp_c >
        free_run.islands[static_cast<std::size_t>(hot)].peak_temp_c) {
      hot = i;
    }
    if (free_run.islands[static_cast<std::size_t>(i)].peak_temp_c <
        free_run.islands[static_cast<std::size_t>(cold)].peak_temp_c) {
      cold = i;
    }
  }
  EXPECT_EQ(hot, 3);
  EXPECT_GT(free_run.islands[static_cast<std::size_t>(hot)].peak_temp_c,
            free_run.islands[static_cast<std::size_t>(cold)].peak_temp_c);

  // A cap between the hot and cold quadrant peaks throttles only the hot one.
  sim::Scenario capped = s;
  const double hot_peak = free_run.islands[static_cast<std::size_t>(hot)].peak_temp_c;
  const double cold_peak = free_run.islands[static_cast<std::size_t>(cold)].peak_temp_c;
  capped.temp_cap_c = s.temp_ambient_c + 0.75 * (hot_peak - s.temp_ambient_c);
  if (capped.temp_cap_c > cold_peak + 1.0) {
    const sim::RunResult r = sim::run(capped);
    EXPECT_GT(r.islands[static_cast<std::size_t>(hot)].throttle_residency, 0.0);
    EXPECT_DOUBLE_EQ(r.islands[static_cast<std::size_t>(cold)].throttle_residency, 0.0);
  }
}

TEST(ThermalScenario, KeysRoundTripThroughConfig) {
  common::Config c;
  sim::Scenario::declare_keys(c);
  const char* argv[] = {"test",          "thermal=1",        "thermal_step_ns=250",
                        "temp_ambient_c=40", "temp_cap_c=70", "temp_hysteresis_c=3",
                        "rc_vertical=1200",  "rc_lateral=2500", "leak_temp_coeff=0.05"};
  c.parse_args(9, argv);
  const sim::Scenario s = sim::Scenario::from_config(c);
  EXPECT_TRUE(s.thermal);
  EXPECT_DOUBLE_EQ(s.thermal_step_ns, 250.0);
  EXPECT_DOUBLE_EQ(s.temp_ambient_c, 40.0);
  EXPECT_DOUBLE_EQ(s.temp_cap_c, 70.0);
  EXPECT_DOUBLE_EQ(s.temp_hysteresis_c, 3.0);
  EXPECT_DOUBLE_EQ(s.rc_vertical, 1200.0);
  EXPECT_DOUBLE_EQ(s.rc_lateral, 2500.0);
  EXPECT_DOUBLE_EQ(s.leak_temp_coeff, 0.05);
}

TEST(ThermalScenario, ValidationNamesTheProblem) {
  sim::Scenario s = thermal_scenario();
  s.thermal = true;
  EXPECT_EQ(sim::thermal_config_problem(s), "");

  sim::Scenario bad = s;
  bad.temp_cap_c = bad.temp_ambient_c - 5.0;
  EXPECT_NE(sim::thermal_config_problem(bad).find("temp_cap_c"), std::string::npos);

  bad = s;
  bad.thermal_step_ns = 1e9;  // one second: far above the stability bound
  EXPECT_NE(sim::thermal_config_problem(bad).find("stability bound"), std::string::npos);

  bad = s;
  bad.rc_lateral = 0.0;
  EXPECT_NE(sim::thermal_config_problem(bad).find("rc_lateral"), std::string::npos);

  // A release point at or below ambient would latch the throttle on
  // permanently (tiles never cool below ambient), so it is rejected.
  bad = s;
  bad.temp_cap_c = 60.0;
  bad.temp_hysteresis_c = 15.1;  // release at 44.9 < ambient 45
  EXPECT_NE(sim::thermal_config_problem(bad).find("latch"), std::string::npos);
  bad.temp_hysteresis_c = 14.0;  // release at 46 > ambient: fine
  EXPECT_EQ(sim::thermal_config_problem(bad), "");

  // Off scenarios are never rejected, however odd the inert keys look.
  bad.thermal = false;
  EXPECT_EQ(sim::thermal_config_problem(bad), "");

  // make_simulator surfaces the same message.
  sim::Scenario throwing = s;
  throwing.thermal_step_ns = 1e9;
  EXPECT_THROW(sim::run(throwing), std::invalid_argument);

  // SweepRunner names the offending point.
  sim::SweepRunner runner(sim::SweepRunner::Options{1});
  auto axis = sim::SweepAxis::custom(
      "thermal", {{"bad", [](sim::Scenario& sc) {
                     sc.thermal = true;
                     sc.thermal_step_ns = 1e9;
                   }}});
  try {
    runner.run(thermal_scenario(), {axis});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("thermal=bad"), std::string::npos);
    EXPECT_NE(msg.find("stability bound"), std::string::npos);
  }
}

}  // namespace
}  // namespace nocdvfs
