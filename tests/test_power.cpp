// Power-substrate tests: the V–F curve (the paper's Fig. 5 anchors), the
// event-energy model's scaling laws, and the segment-integrating power
// accumulator.

#include <gtest/gtest.h>

#include <cmath>

#include "power/energy_model.hpp"
#include "power/power_model.hpp"
#include "power/vf_curve.hpp"

namespace nocdvfs::power {
namespace {

// ----------------------------------------------------------- VF curve ----

TEST(VfCurve, PaperAnchorsHoldExactly) {
  const VfCurve c = VfCurve::fdsoi28();
  EXPECT_NEAR(c.frequency_at(0.56), 333e6, 1e3);
  EXPECT_NEAR(c.frequency_at(0.90), 1e9, 1e3);
  EXPECT_NEAR(c.voltage_for(333e6), 0.56, 1e-4);
  EXPECT_NEAR(c.voltage_for(1e9), 0.90, 1e-4);
}

TEST(VfCurve, MonotoneAndNearLinear) {
  const VfCurve c = VfCurve::fdsoi28();
  double prev_f = 0.0;
  for (double v = 0.56; v <= 0.901; v += 0.01) {
    const double f = c.frequency_at(v);
    EXPECT_GT(f, prev_f) << "at " << v;
    prev_f = f;
  }
  // Fig. 5 is close to linear over [0.56, 0.9] V; the alpha-power model
  // must stay within 15% of the chord at mid-range.
  const double mid = c.frequency_at(0.73);
  const double chord = 0.5 * (333e6 + 1e9);
  EXPECT_NEAR(mid, chord, 0.15 * chord);
}

TEST(VfCurve, RoundTripConsistency) {
  const VfCurve c = VfCurve::fdsoi28();
  for (double f = 350e6; f < 1e9; f += 50e6) {
    EXPECT_NEAR(c.frequency_at(c.voltage_for(f)), f, 2e6) << "f = " << f;
  }
}

TEST(VfCurve, ClampsOutsideRange) {
  const VfCurve c = VfCurve::fdsoi28();
  EXPECT_DOUBLE_EQ(c.frequency_at(0.3), c.f_min());
  EXPECT_DOUBLE_EQ(c.frequency_at(1.2), c.f_max());
  EXPECT_DOUBLE_EQ(c.voltage_for(100e6), c.v_min());
  EXPECT_DOUBLE_EQ(c.voltage_for(2e9), c.v_max());
  EXPECT_DOUBLE_EQ(c.clamp_frequency(2e9), c.f_max());
  EXPECT_DOUBLE_EQ(c.clamp_frequency(1e6), c.f_min());
}

TEST(VfCurve, QuantizedSnapsUpward) {
  const VfCurve c = VfCurve::fdsoi28().quantized(4);
  ASSERT_TRUE(c.is_quantized());
  ASSERT_EQ(c.levels().size(), 4u);
  // Levels are evenly spaced between f_min and f_max.
  const double step = (c.f_max() - c.f_min()) / 3.0;
  EXPECT_NEAR(c.levels()[1], c.f_min() + step, 1.0);
  // A request between levels rounds UP (timing must still close).
  const double request = c.f_min() + 0.4 * step;
  EXPECT_NEAR(c.snap_frequency(request), c.levels()[1], 1.0);
  // Exact level stays put; top clamps.
  EXPECT_NEAR(c.snap_frequency(c.levels()[2]), c.levels()[2], 1.0);
  EXPECT_NEAR(c.snap_frequency(2e9), c.f_max(), 1.0);
}

TEST(VfCurve, ContinuousSnapIsClamp) {
  const VfCurve c = VfCurve::fdsoi28();
  EXPECT_FALSE(c.is_quantized());
  EXPECT_DOUBLE_EQ(c.snap_frequency(5e8), 5e8);
}

TEST(VfCurve, ValidationErrors) {
  EXPECT_THROW(VfCurve({{0.5, 1e9}}), std::invalid_argument);
  EXPECT_THROW(VfCurve({{0.5, 1e9}, {0.6, 0.9e9}}), std::invalid_argument);  // F not increasing
  EXPECT_THROW(VfCurve({{0.6, 1e9}, {0.5, 2e9}}), std::invalid_argument);    // V not increasing
  EXPECT_THROW(VfCurve::fdsoi28().quantized(1), std::invalid_argument);
}

// ------------------------------------------------------- energy model ----

TEST(EnergyModel, VoltageScalingLaws) {
  const EnergyModel m(EnergyModel::reference_geometry());
  EXPECT_NEAR(m.dynamic_scale(0.9), 1.0, 1e-12);
  EXPECT_NEAR(m.dynamic_scale(0.45), 0.25, 1e-12);           // (V/V0)²
  EXPECT_NEAR(m.leakage_scale(0.45), 0.125, 1e-12);          // (V/V0)³
}

TEST(EnergyModel, EventEnergyAdditive) {
  const EnergyModel m(EnergyModel::reference_geometry());
  ActivityCounters a;
  a.buffer_writes = 100;
  ActivityCounters b;
  b.crossbar_traversals = 50;
  const double sep = m.event_energy_j(a, 0.9) + m.event_energy_j(b, 0.9);
  ActivityCounters both = a + b;
  EXPECT_NEAR(m.event_energy_j(both, 0.9), sep, 1e-18);
}

TEST(EnergyModel, ReferenceEventEnergiesAreCalibrated) {
  const EnergyModel m(EnergyModel::reference_geometry());
  // Reference geometry reproduces the quoted constants exactly.
  EXPECT_NEAR(m.buffer_write_j(), 0.75e-12, 1e-18);
  EXPECT_NEAR(m.link_j(), 1.0e-12, 1e-18);
  EXPECT_NEAR(m.clock_per_cycle_j(), 2.2e-12, 1e-18);
}

TEST(EnergyModel, GeometryScalingMonotone) {
  RouterGeometry big = EnergyModel::reference_geometry();
  big.num_vcs *= 2;
  big.buffer_depth *= 2;
  const EnergyModel ref(EnergyModel::reference_geometry());
  const EnergyModel scaled(big);
  EXPECT_GT(scaled.clock_per_cycle_j(), ref.clock_per_cycle_j());
  EXPECT_GT(scaled.router_leakage_w(0.9), ref.router_leakage_w(0.9));

  RouterGeometry wide = EnergyModel::reference_geometry();
  wide.flit_bits *= 2;
  const EnergyModel wider(wide);
  EXPECT_NEAR(wider.link_j(), 2.0 * ref.link_j(), 1e-18);
  EXPECT_GT(wider.buffer_write_j(), ref.buffer_write_j());
}

TEST(EnergyModel, IdlePowerMatchesFig6Intercept) {
  // 5×5 NoC at (0.9 V, 1 GHz) with zero traffic: clock + leakage should
  // land near the ≈95 mW intercept of the paper's Fig. 6.
  const EnergyModel m(EnergyModel::reference_geometry());
  const int routers = 25, links = 80, locals = 50;
  const double clock_w = m.clock_per_cycle_j() * 1e9 * routers;
  const double leak_w =
      m.router_leakage_w(0.9) * routers + m.link_leakage_w(0.9) * (links + 0.5 * locals);
  const double idle_mw = (clock_w + leak_w) * 1e3;
  EXPECT_GT(idle_mw, 75.0);
  EXPECT_LT(idle_mw, 115.0);
}

TEST(EnergyModel, LeakageScalingAtCurveVoltageExtremes) {
  // The VF curve tunes over [0.56, 0.90] V; exercise the scaling laws at
  // both endpoints (previous coverage only hit interior points).
  const EnergyModel m(EnergyModel::reference_geometry());
  const VfCurve c = VfCurve::fdsoi28();
  EXPECT_DOUBLE_EQ(c.v_min(), 0.56);
  EXPECT_DOUBLE_EQ(c.v_max(), 0.90);
  // Top of the range is the calibration point: scale factors are exactly 1.
  EXPECT_DOUBLE_EQ(m.leakage_scale(c.v_max()), 1.0);
  EXPECT_DOUBLE_EQ(m.dynamic_scale(c.v_max()), 1.0);
  // Bottom of the range follows the cubic law exactly.
  EXPECT_NEAR(m.leakage_scale(c.v_min()), std::pow(0.56 / 0.90, 3.0), 1e-12);
  EXPECT_NEAR(m.dynamic_scale(c.v_min()), std::pow(0.56 / 0.90, 2.0), 1e-12);
  // Leakage power at the endpoints brackets every interior voltage.
  const double bottom_w = m.router_leakage_w(c.v_min());
  const double top_w = m.router_leakage_w(c.v_max());
  EXPECT_LT(bottom_w, top_w);
  for (int step = 0; step <= 17; ++step) {
    const double v = c.v_min() + (c.v_max() - c.v_min()) * step / 17.0;
    EXPECT_GE(m.router_leakage_w(v), bottom_w) << "v = " << v;
    EXPECT_LE(m.router_leakage_w(v), top_w) << "v = " << v;
  }
  // The full voltage swing cuts leakage ~4x — the mechanism behind the
  // paper's Fig. 6 power gap.
  EXPECT_NEAR(top_w / bottom_w, std::pow(0.90 / 0.56, 3.0), 1e-9);
}

TEST(EnergyModel, RejectsDegenerateGeometry) {
  RouterGeometry g = EnergyModel::reference_geometry();
  g.num_ports = 1;
  EXPECT_THROW(EnergyModel{g}, std::invalid_argument);
  g = EnergyModel::reference_geometry();
  g.flit_bits = 0;
  EXPECT_THROW(EnergyModel{g}, std::invalid_argument);
}

// ---------------------------------------------------- power integration ----

NetworkInventory small_inventory() { return NetworkInventory{9, 24, 18}; }

TEST(PowerAccumulator, ConstantSegmentMatchesDirectIntegration) {
  const EnergyModel m(EnergyModel::reference_geometry());
  PowerAccumulator acc(m, small_inventory());
  ActivityCounters start;
  acc.start(0, start, 0, 0.9, 1e9);
  ActivityCounters end;
  end.buffer_writes = 1000;
  end.link_flit_hops = 500;
  acc.stop(1'000'000, end, 1000);

  const auto direct =
      integrate_constant_vf(m, small_inventory(), end, 1000, 1'000'000, 0.9);
  EXPECT_NEAR(acc.breakdown().total_j(), direct.total_j(), 1e-18);
  EXPECT_NEAR(acc.breakdown().average_power_w(), direct.average_power_w(), 1e-9);
}

TEST(PowerAccumulator, SegmentedEqualsSingleWhenVfConstant) {
  const EnergyModel m(EnergyModel::reference_geometry());
  PowerAccumulator split(m, small_inventory());
  PowerAccumulator whole(m, small_inventory());

  ActivityCounters a0;
  ActivityCounters a1;
  a1.buffer_writes = 300;
  ActivityCounters a2 = a1;
  a2.crossbar_traversals = 200;

  whole.start(0, a0, 0, 0.8, 8e8);
  whole.stop(2'000'000, a2, 1600);

  split.start(0, a0, 0, 0.8, 8e8);
  split.change_operating_point(1'000'000, a1, 800, 0.8, 8e8);
  split.stop(2'000'000, a2, 1600);

  EXPECT_NEAR(split.breakdown().total_j(), whole.breakdown().total_j(), 1e-15);
}

TEST(PowerAccumulator, LowerVoltageSegmentCostsLess) {
  const EnergyModel m(EnergyModel::reference_geometry());
  ActivityCounters a0;
  ActivityCounters a1;
  a1.buffer_writes = 10000;

  PowerAccumulator hot(m, small_inventory());
  hot.start(0, a0, 0, 0.9, 1e9);
  hot.stop(1'000'000, a1, 1000);

  PowerAccumulator cold(m, small_inventory());
  cold.start(0, a0, 0, 0.6, 4e8);
  cold.stop(1'000'000, a1, 400);

  EXPECT_LT(cold.breakdown().total_j(), hot.breakdown().total_j());
  EXPECT_LT(cold.breakdown().datapath_j, hot.breakdown().datapath_j);
  EXPECT_LT(cold.breakdown().leakage_j, hot.breakdown().leakage_j);
}

TEST(PowerAccumulator, RestartAccumulatesAcrossStopStartCycles) {
  // The documented restart semantics: stop() closes the interval but keeps
  // the accumulated breakdown, so a re-start continues adding to it (the
  // simulator's per-phase protocol relies on this).
  const EnergyModel m(EnergyModel::reference_geometry());
  PowerAccumulator acc(m, small_inventory());

  ActivityCounters a0;
  ActivityCounters a1;
  a1.buffer_writes = 400;
  acc.start(0, a0, 0, 0.9, 1e9);
  acc.stop(1'000'000, a1, 1000);
  EXPECT_FALSE(acc.running());
  const double first_j = acc.breakdown().total_j();
  EXPECT_GT(first_j, 0.0);

  // Restart after a gap: the gap itself charges nothing.
  ActivityCounters a2 = a1;
  a2.crossbar_traversals = 250;
  acc.start(5'000'000, a1, 1000, 0.7, 6e8);
  EXPECT_TRUE(acc.running());
  acc.stop(6'000'000, a2, 1600);

  PowerAccumulator second(m, small_inventory());
  second.start(5'000'000, a1, 1000, 0.7, 6e8);
  second.stop(6'000'000, a2, 1600);
  EXPECT_NEAR(acc.breakdown().total_j(), first_j + second.breakdown().total_j(), 1e-18);
  // Elapsed time covers only the two active intervals, not the gap.
  EXPECT_EQ(acc.breakdown().elapsed_ps, 2'000'000u);

  // reset() zeroes the breakdown and allows a fresh start.
  acc.reset();
  EXPECT_EQ(acc.breakdown().total_j(), 0.0);
  EXPECT_EQ(acc.breakdown().elapsed_ps, 0u);
  acc.start(0, a0, 0, 0.9, 1e9);
  acc.stop(1'000'000, a1, 1000);
  EXPECT_NEAR(acc.breakdown().total_j(), first_j, 1e-18);
}

TEST(PowerAccumulator, MisuseIsCaught) {
  const EnergyModel m(EnergyModel::reference_geometry());
  PowerAccumulator acc(m, small_inventory());
  ActivityCounters a;
  EXPECT_THROW(acc.stop(0, a, 0), common::InvariantViolation);
  acc.start(0, a, 0, 0.9, 1e9);
  EXPECT_THROW(acc.start(0, a, 0, 0.9, 1e9), common::InvariantViolation);
  acc.stop(10, a, 1);
  acc.reset();
  EXPECT_EQ(acc.breakdown().total_j(), 0.0);
}

TEST(PowerAccumulator, InventoryValidation) {
  const EnergyModel m(EnergyModel::reference_geometry());
  EXPECT_THROW(PowerAccumulator(m, NetworkInventory{0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(PowerAccumulator(m, NetworkInventory{1, -1, 1}), std::invalid_argument);
}

TEST(ActivityCounters, DiffAndTotals) {
  ActivityCounters a;
  a.buffer_writes = 10;
  a.link_flit_hops = 4;
  ActivityCounters b = a;
  b.buffer_writes = 25;
  b.vc_alloc_grants = 3;
  const ActivityCounters d = b.diff_since(a);
  EXPECT_EQ(d.buffer_writes, 15u);
  EXPECT_EQ(d.vc_alloc_grants, 3u);
  EXPECT_EQ(d.link_flit_hops, 0u);
  EXPECT_EQ(d.total_events(), 18u);
}

}  // namespace
}  // namespace nocdvfs::power
