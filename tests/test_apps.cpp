// Tests for the task-graph substrate and the two multimedia workloads of
// the paper's Fig. 9.

#include <gtest/gtest.h>

#include "apps/app_graphs.hpp"
#include "apps/task_graph.hpp"

namespace nocdvfs::apps {
namespace {

TaskGraph tiny_graph() {
  return TaskGraph("tiny", 2, 2,
                   {{"a", {0, 0}}, {"b", {1, 0}}, {"c", {0, 1}}},
                   {{0, 1, 10.0}, {1, 2, 5.0}});
}

TEST(TaskGraph, TotalsAndLookups) {
  const TaskGraph g = tiny_graph();
  EXPECT_DOUBLE_EQ(g.total_packets_per_frame(), 15.0);
  EXPECT_EQ(g.task_index("b"), 1);
  EXPECT_THROW(g.task_index("zz"), std::out_of_range);
  EXPECT_EQ(g.placement_node(0), 0);
  EXPECT_EQ(g.placement_node(2), 2);
}

TEST(TaskGraph, MeanHopsIsTrafficWeighted) {
  const TaskGraph g = tiny_graph();
  // a(0,0)->b(1,0): 1 hop ×10; b(1,0)->c(0,1): 2 hops ×5  → 20/15.
  EXPECT_NEAR(g.mean_hops(), 20.0 / 15.0, 1e-12);
}

TEST(TaskGraph, RateMatrixScalesWithFps) {
  const TaskGraph g = tiny_graph();
  const auto rates = g.rate_matrix_pps(10.0);
  EXPECT_DOUBLE_EQ(rates[0][1], 100.0);
  EXPECT_DOUBLE_EQ(rates[1][2], 50.0);
  EXPECT_DOUBLE_EQ(rates[1][0], 0.0);
  double total = 0.0;
  for (const auto& row : rates) {
    for (double r : row) total += r;
  }
  EXPECT_DOUBLE_EQ(total, 150.0);
}

TEST(TaskGraph, MeanLambdaMath) {
  const TaskGraph g = tiny_graph();
  // 15 packets/frame × 10 fps × 4 flits / (1e9 Hz × 4 nodes).
  EXPECT_NEAR(g.mean_lambda(10.0, 4, 1e9), 150.0 * 4 / (1e9 * 4), 1e-18);
}

TEST(TaskGraph, ValidationRejectsBadInput) {
  // Duplicate placement.
  EXPECT_THROW(TaskGraph("x", 2, 2, {{"a", {0, 0}}, {"b", {0, 0}}}, {}),
               std::invalid_argument);
  // Placement off-mesh.
  EXPECT_THROW(TaskGraph("x", 2, 2, {{"a", {2, 0}}}, {}), std::invalid_argument);
  // More tasks than nodes.
  EXPECT_THROW(TaskGraph("x", 2, 1,
                         {{"a", {0, 0}}, {"b", {1, 0}}, {"c", {0, 0}}}, {}),
               std::invalid_argument);
  // Duplicate names.
  EXPECT_THROW(TaskGraph("x", 2, 2, {{"a", {0, 0}}, {"a", {1, 0}}}, {}),
               std::invalid_argument);
  // Edge to unknown task.
  EXPECT_THROW(TaskGraph("x", 2, 2, {{"a", {0, 0}}}, {{0, 3, 1.0}}),
               std::invalid_argument);
  // Self loop.
  EXPECT_THROW(TaskGraph("x", 2, 2, {{"a", {0, 0}}, {"b", {1, 0}}}, {{0, 0, 1.0}}),
               std::invalid_argument);
  // Non-positive weight.
  EXPECT_THROW(TaskGraph("x", 2, 2, {{"a", {0, 0}}, {"b", {1, 0}}}, {{0, 1, 0.0}}),
               std::invalid_argument);
  // No tasks at all.
  EXPECT_THROW(TaskGraph("x", 2, 2, {}, {}), std::invalid_argument);
}

TEST(H264, GraphShapeMatchesFigure) {
  const TaskGraph g = h264_encoder();
  EXPECT_EQ(g.mesh_width(), 4);
  EXPECT_EQ(g.mesh_height(), 4);
  EXPECT_EQ(g.nodes().size(), 15u);  // 15 blocks on 16 nodes
  EXPECT_EQ(g.edges().size(), 19u);  // 19 weights in Fig. 9(a)
  // Sum of the figure's packets/frame annotations.
  EXPECT_NEAR(g.total_packets_per_frame(), 4353.0, 1e-9);
}

TEST(H264, PipelineEdgesPresent) {
  const TaskGraph g = h264_encoder();
  const int yuv = g.task_index("yuv_generator");
  const int pad = g.task_index("padding_mv");
  bool found = false;
  for (const auto& e : g.edges()) {
    if (e.src_task == yuv && e.dst_task == pad) {
      found = true;
      EXPECT_DOUBLE_EQ(e.packets_per_frame, 840.0);  // the heaviest video edge
    }
  }
  EXPECT_TRUE(found);
}

TEST(Vce, GraphShapeMatchesFigure) {
  const TaskGraph g = video_conference_encoder();
  EXPECT_EQ(g.mesh_width(), 5);
  EXPECT_EQ(g.mesh_height(), 5);
  EXPECT_EQ(g.nodes().size(), 25u);  // fills the 5×5 mesh
  EXPECT_EQ(g.edges().size(), 31u);  // 31 weights in Fig. 9(b)
  EXPECT_GT(g.total_packets_per_frame(), 10.0 * h264_encoder().total_packets_per_frame())
      << "VCE traffic is an order of magnitude above H.264 in the figure";
}

TEST(Vce, AudioAndVideoChainsConverge) {
  const TaskGraph g = video_conference_encoder();
  const int mux = g.task_index("stream_mux");
  int into_mux = 0;
  for (const auto& e : g.edges()) into_mux += (e.dst_task == mux) ? 1 : 0;
  EXPECT_GE(into_mux, 3) << "entropy, sram, huffman all feed the mux";
}

TEST(AppGraphs, MappingsKeepHeavyEdgesShort) {
  // The hand mapping should do clearly better than the worst case: the
  // traffic-weighted mean hop distance stays under 2.5 for both apps.
  EXPECT_LT(h264_encoder().mean_hops(), 2.5);
  EXPECT_LT(video_conference_encoder().mean_hops(), 2.5);
}

TEST(AppGraphs, RateMatricesAreWellFormed) {
  for (const TaskGraph& g : {h264_encoder(), video_conference_encoder()}) {
    const auto rates = g.rate_matrix_pps(kReferenceFps);
    const auto n = static_cast<std::size_t>(g.mesh_width() * g.mesh_height());
    ASSERT_EQ(rates.size(), n);
    double total = 0.0;
    for (const auto& row : rates) {
      ASSERT_EQ(row.size(), n);
      for (double r : row) {
        ASSERT_GE(r, 0.0);
        total += r;
      }
    }
    EXPECT_NEAR(total, g.total_packets_per_frame() * kReferenceFps, 1e-6);
  }
}

}  // namespace
}  // namespace nocdvfs::apps
