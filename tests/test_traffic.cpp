// Traffic-layer tests: destination patterns (including the paper's five),
// injection processes, and the two traffic models. Pattern invariants are
// checked as properties (bijectivity for permutations, rate accuracy for
// processes) with parameterized suites where the property is shared.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "traffic/traffic_model.hpp"

namespace nocdvfs::traffic {
namespace {

using noc::MeshTopology;
using noc::NodeId;

// ----------------------------------------------------------- patterns ----

TEST(Pattern, UniformCoversAllDestinations) {
  MeshTopology topo(4, 4);
  auto p = TrafficPattern::create("uniform", topo);
  common::Rng rng(1);
  std::map<NodeId, int> counts;
  constexpr int kN = 32000;
  for (int i = 0; i < kN; ++i) ++counts[p->pick(5, rng)];
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [node, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 16, 0.01) << "node " << node;
  }
}

TEST(Pattern, TornadoFormula) {
  MeshTopology topo(5, 5);
  auto p = TrafficPattern::create("tornado", topo);
  common::Rng rng(1);
  // ceil(5/2) - 1 = 2 hops around each dimension.
  EXPECT_EQ(p->pick(topo.node_at({0, 0}), rng), topo.node_at({2, 2}));
  EXPECT_EQ(p->pick(topo.node_at({4, 1}), rng), topo.node_at({1, 3}));
}

TEST(Pattern, BitComplementMirrorsCoordinates) {
  MeshTopology topo(4, 4);
  auto p = TrafficPattern::create("bitcomp", topo);
  common::Rng rng(1);
  EXPECT_EQ(p->pick(topo.node_at({0, 0}), rng), topo.node_at({3, 3}));
  EXPECT_EQ(p->pick(topo.node_at({1, 2}), rng), topo.node_at({2, 1}));
}

TEST(Pattern, TransposeSwapsCoordinates) {
  MeshTopology topo(5, 5);
  auto p = TrafficPattern::create("transpose", topo);
  common::Rng rng(1);
  EXPECT_EQ(p->pick(topo.node_at({1, 3}), rng), topo.node_at({3, 1}));
  EXPECT_EQ(p->pick(topo.node_at({2, 2}), rng), topo.node_at({2, 2}));
}

TEST(Pattern, TransposeRequiresSquareMesh) {
  MeshTopology topo(4, 5);
  EXPECT_THROW(TrafficPattern::create("transpose", topo), std::invalid_argument);
}

TEST(Pattern, NeighborWrapsModK) {
  MeshTopology topo(4, 4);
  auto p = TrafficPattern::create("neighbor", topo);
  common::Rng rng(1);
  EXPECT_EQ(p->pick(topo.node_at({1, 1}), rng), topo.node_at({2, 2}));
  EXPECT_EQ(p->pick(topo.node_at({3, 3}), rng), topo.node_at({0, 0}));
}

TEST(Pattern, ShuffleAndBitrevRequirePowerOfTwo) {
  MeshTopology topo55(5, 5);
  EXPECT_THROW(TrafficPattern::create("shuffle", topo55), std::invalid_argument);
  EXPECT_THROW(TrafficPattern::create("bitrev", topo55), std::invalid_argument);
  MeshTopology topo44(4, 4);
  EXPECT_NE(TrafficPattern::create("shuffle", topo44), nullptr);
  EXPECT_NE(TrafficPattern::create("bitrev", topo44), nullptr);
}

TEST(Pattern, BitrevReversesIndexBits) {
  MeshTopology topo(4, 4);  // 16 nodes, 4 bits
  auto p = TrafficPattern::create("bitrev", topo);
  common::Rng rng(1);
  EXPECT_EQ(p->pick(0b0001, rng), 0b1000);
  EXPECT_EQ(p->pick(0b1010, rng), 0b0101);
  EXPECT_EQ(p->pick(0b1111, rng), 0b1111);
}

TEST(Pattern, HotspotFractionRespected) {
  MeshTopology topo(5, 5);
  auto p = TrafficPattern::create("hotspot", topo, 1, 0.4);
  common::Rng rng(2);
  const NodeId hotspot = topo.node_at({2, 2});
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += (p->pick(0, rng) == hotspot) ? 1 : 0;
  // 40% direct + uniform residue hitting the hotspot 1/25 of the time.
  const double expected = 0.4 + 0.6 / 25.0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, expected, 0.01);
}

TEST(Pattern, HotspotRejectsBadFraction) {
  MeshTopology topo(3, 3);
  EXPECT_THROW(TrafficPattern::create("hotspot", topo, 1, 1.5), std::invalid_argument);
}

TEST(Pattern, UnknownNameRejected) {
  MeshTopology topo(3, 3);
  EXPECT_THROW(TrafficPattern::create("nearest-enemy", topo), std::invalid_argument);
}

TEST(Pattern, MeanHopDistanceUniform) {
  // For a k×k mesh with uniform traffic (self included), the mean per-dim
  // distance is (k²−1)/(3k); for k = 5 the total is 2·(24/15) = 3.2.
  MeshTopology topo(5, 5);
  auto p = TrafficPattern::create("uniform", topo);
  common::Rng rng(3);
  EXPECT_NEAR(TrafficPattern::mean_hop_distance(*p, topo, rng, 2000), 3.2, 0.05);
}

/// Property: every deterministic pattern on a square power-of-two mesh is a
/// bijection (permutation traffic must not overload any destination).
class PermutationProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(PermutationProperty, IsBijective) {
  MeshTopology topo(4, 4);
  auto p = TrafficPattern::create(GetParam(), topo, /*seed=*/5);
  ASSERT_TRUE(p->deterministic());
  common::Rng rng(1);
  std::set<NodeId> dests;
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    const NodeId d = p->pick(s, rng);
    EXPECT_TRUE(topo.valid(d));
    dests.insert(d);
  }
  EXPECT_EQ(dests.size(), static_cast<std::size_t>(topo.num_nodes()));
}

INSTANTIATE_TEST_SUITE_P(AllPermutations, PermutationProperty,
                         ::testing::Values("tornado", "bitcomp", "transpose", "neighbor",
                                           "shuffle", "bitrev", "permutation"));

/// Property: picks are stable across repeated calls for deterministic
/// patterns, and within the mesh for all patterns.
class PatternValidity : public ::testing::TestWithParam<std::string> {};

TEST_P(PatternValidity, DestinationsAlwaysOnMesh) {
  MeshTopology topo(4, 4);
  auto p = TrafficPattern::create(GetParam(), topo, 7);
  common::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const NodeId s = static_cast<NodeId>(rng.uniform_below(16));
    EXPECT_TRUE(topo.valid(p->pick(s, rng)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternValidity,
                         ::testing::ValuesIn(TrafficPattern::known_patterns()));

// ---------------------------------------------------------- injection ----

TEST(Injection, BernoulliRateAccuracy) {
  BernoulliInjection inj(0.15);
  common::Rng rng(4);
  constexpr int kN = 200000;
  int fires = 0;
  for (int i = 0; i < kN; ++i) fires += inj.fire(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fires) / kN, 0.15, 0.005);
}

TEST(Injection, BernoulliRejectsBadRate) {
  EXPECT_THROW(BernoulliInjection(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliInjection(1.1), std::invalid_argument);
}

TEST(Injection, OnOffLongRunRateMatches) {
  OnOffInjection inj(0.1);
  common::Rng rng(5);
  constexpr int kN = 400000;
  int fires = 0;
  for (int i = 0; i < kN; ++i) fires += inj.fire(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fires) / kN, 0.1, 0.01);
}

TEST(Injection, OnOffIsBurstierThanBernoulli) {
  // Compare the variance of per-window counts: the MMPP must exceed the
  // memoryless process at equal mean rate.
  constexpr double kRate = 0.1;
  constexpr int kWindows = 2000;
  constexpr int kWindow = 100;
  auto window_variance = [&](InjectionProcess& inj, common::Rng& rng) {
    double sum = 0.0, sum2 = 0.0;
    for (int w = 0; w < kWindows; ++w) {
      int c = 0;
      for (int i = 0; i < kWindow; ++i) c += inj.fire(rng) ? 1 : 0;
      sum += c;
      sum2 += static_cast<double>(c) * c;
    }
    const double mean = sum / kWindows;
    return sum2 / kWindows - mean * mean;
  };
  common::Rng rng1(6), rng2(6);
  BernoulliInjection bern(kRate);
  OnOffInjection onoff(kRate);
  EXPECT_GT(window_variance(onoff, rng2), 1.5 * window_variance(bern, rng1));
}

TEST(Injection, OnOffRejectsInfeasibleDuty) {
  // duty = alpha/(alpha+beta) = 0.2; on_rate = rate/duty > 1 must throw.
  EXPECT_THROW(OnOffInjection(0.5, 0.0125, 0.05), std::invalid_argument);
}

TEST(Injection, FactoryByName) {
  EXPECT_NE(InjectionProcess::create("bernoulli", 0.1), nullptr);
  EXPECT_NE(InjectionProcess::create("onoff", 0.1), nullptr);
  EXPECT_THROW(InjectionProcess::create("poisson", 0.1), std::invalid_argument);
}

// ------------------------------------------------------ traffic model ----

TEST(SyntheticTraffic, OfferedRateMatchesLambda) {
  noc::NetworkConfig ncfg;
  ncfg.width = 4;
  ncfg.height = 4;
  noc::Network net(ncfg);
  MeshTopology topo(4, 4);
  SyntheticTrafficParams params;
  params.lambda = 0.2;
  params.packet_size = 4;
  SyntheticTraffic model(topo, params);
  constexpr int kTicks = 50000;
  for (int t = 0; t < kTicks; ++t) model.node_tick(t * 1000, 0, net);
  const double measured = static_cast<double>(net.total_flits_generated()) /
                          (16.0 * static_cast<double>(kTicks));
  EXPECT_NEAR(measured, 0.2, 0.01);
  EXPECT_DOUBLE_EQ(model.offered_flits_per_node_cycle(), 0.2);
}

TEST(SyntheticTraffic, RejectsInfeasibleLambda) {
  MeshTopology topo(4, 4);
  SyntheticTrafficParams params;
  params.lambda = 6.0;
  params.packet_size = 4;  // 1.5 packets per cycle: impossible
  EXPECT_THROW(SyntheticTraffic(topo, params), std::invalid_argument);
  params.lambda = -0.1;
  EXPECT_THROW(SyntheticTraffic(topo, params), std::invalid_argument);
}

TEST(MatrixTraffic, RatesAndDestinationsFollowMatrix) {
  noc::NetworkConfig ncfg;
  ncfg.width = 2;
  ncfg.height = 2;
  noc::Network net(ncfg);
  // Node 0 sends 3:1 to nodes 1 and 2; others silent. 40 M packets/s at a
  // 1 GHz node clock = 0.04 packets/cycle.
  std::vector<std::vector<double>> rates(4, std::vector<double>(4, 0.0));
  rates[0][1] = 30e6;
  rates[0][2] = 10e6;
  MatrixTraffic model(rates, 2, 1e9, 42);
  constexpr int kTicks = 200000;
  for (int t = 0; t < kTicks; ++t) model.node_tick(t * 1000, 0, net);

  EXPECT_EQ(net.ni(1).packets_generated(), 0u);
  const double total = static_cast<double>(net.ni(0).packets_generated());
  EXPECT_NEAR(total / kTicks, 0.04, 0.004);
  // Mean offered flits/node-cycle: 0.04 packets × 2 flits / 4 nodes.
  EXPECT_NEAR(model.offered_flits_per_node_cycle(), 0.02, 1e-12);
}

TEST(MatrixTraffic, ValidationErrors) {
  EXPECT_THROW(MatrixTraffic({}, 2, 1e9, 1), std::invalid_argument);
  std::vector<std::vector<double>> ragged = {{0.0, 1.0}, {0.0}};
  EXPECT_THROW(MatrixTraffic(ragged, 2, 1e9, 1), std::invalid_argument);
  std::vector<std::vector<double>> negative(2, std::vector<double>(2, 0.0));
  negative[0][1] = -5.0;
  EXPECT_THROW(MatrixTraffic(negative, 2, 1e9, 1), std::invalid_argument);
  std::vector<std::vector<double>> too_fast(2, std::vector<double>(2, 0.0));
  too_fast[0][1] = 2e9;  // 2 packets per node cycle
  EXPECT_THROW(MatrixTraffic(too_fast, 2, 1e9, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nocdvfs::traffic
