// Quiescence properties of the skip-idle stepping (NetworkConfig::skip_idle):
//
//  * a zero-injection run is *exactly* free — zero packets, zero datapath
//    activity counters, energy precisely clock + leakage, and the skip
//    counter accounts for essentially every router/NI step;
//  * a burst drains to a quiescent network whose subsequent steps are
//    observably free (the skip counter advances by the full member count
//    per cycle) while delivering records bit-identical to the always-step
//    discipline;
//  * the activity list is exact: parked means empty buffers, idle NI and
//    nothing in flight, so activity can only resume through a push.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "noc/network.hpp"
#include "sim/scenario.hpp"

namespace nocdvfs {
namespace {

using noc::Network;
using noc::NetworkConfig;
using noc::NodeId;

common::Picoseconds ps_of(std::uint64_t cycle) {
  return static_cast<common::Picoseconds>(cycle) * 1000;
}

TEST(Quiescence, ZeroInjectionRunIsExactlyFree) {
  sim::Scenario s;
  s.lambda = 0.0;
  s.network.width = 8;
  s.network.height = 8;
  s.seed = 7;
  s.phases.warmup_node_cycles = 1000;
  s.phases.measure_node_cycles = 10000;
  s.phases.adaptive_warmup = false;

  const auto simulator = sim::make_simulator(s);
  const sim::RunResult r = simulator->run(s.phases);

  EXPECT_EQ(r.packets_delivered, 0u);
  EXPECT_EQ(simulator->network().total_flits_generated(), 0u);

  // No flit ever moved, so every datapath counter is zero...
  const power::ActivityCounters a = simulator->network().total_activity();
  EXPECT_EQ(a.buffer_writes, 0u);
  EXPECT_EQ(a.buffer_reads, 0u);
  EXPECT_EQ(a.crossbar_traversals, 0u);
  EXPECT_EQ(a.vc_alloc_grants, 0u);
  EXPECT_EQ(a.sw_alloc_grants, 0u);
  EXPECT_EQ(a.alloc_requests, 0u);
  EXPECT_EQ(a.link_flit_hops, 0u);
  EXPECT_EQ(a.local_flit_hops, 0u);

  // ... the datapath energy is exactly zero (not merely small), leaving
  // energy == clock + leakage as an identity on the breakdown ...
  EXPECT_EQ(r.power.datapath_j, 0.0);
  EXPECT_EQ(r.power.total_j(), r.power.clock_j + r.power.leakage_j);

  // ... and the skip counter shows the run was near-universally elided:
  // all 64 nodes park after the first cycle and never wake.
  const std::uint64_t members = 64;
  EXPECT_GE(simulator->network().idle_steps_skipped(),
            members * (r.measure_noc_cycles - 2));
  EXPECT_EQ(simulator->network().island_active_nodes(0), 0);
}

TEST(Quiescence, IdleNetworkParksEveryNodeAfterOneCycle) {
  NetworkConfig cfg;
  cfg.width = 4;
  cfg.height = 4;
  Network net(cfg);
  ASSERT_TRUE(net.skip_idle());

  // Cycle 1 steps all 16 freshly constructed nodes, finds them all
  // quiescent and parks them; every later cycle skips all 16.
  const std::uint64_t cycles = 100;
  for (std::uint64_t c = 1; c <= cycles; ++c) net.step(ps_of(c));
  EXPECT_EQ(net.island_active_nodes(0), 0);
  EXPECT_EQ(net.island_idle_steps_skipped(0), 16 * (cycles - 1));

  const power::ActivityCounters a = net.total_activity();
  EXPECT_EQ(a.buffer_writes + a.buffer_reads + a.crossbar_traversals +
                a.alloc_requests + a.link_flit_hops + a.local_flit_hops,
            0u);
}

/// Drive identical burst-then-silence traffic through a skip-idle network
/// and an always-step one, in lockstep.
TEST(Quiescence, BurstThenSilenceDrainsToFreeStepsBitIdentically) {
  NetworkConfig cfg;
  cfg.width = 8;
  cfg.height = 8;
  cfg.skip_idle = true;
  NetworkConfig cfg_off = cfg;
  cfg_off.skip_idle = false;
  Network on(cfg);
  Network off(cfg_off);

  const int n = cfg.num_nodes();
  const std::uint64_t total_cycles = 3000;
  for (std::uint64_t c = 1; c <= total_cycles; ++c) {
    if (c == 5) {
      // The burst: every fourth node fires an 11-flit packet at its mirror.
      for (NodeId src = 0; src < n; src += 4) {
        const NodeId dst = static_cast<NodeId>(n - 1 - src);
        on.ni(src).enqueue_packet(dst, 11, ps_of(c), c);
        off.ni(src).enqueue_packet(dst, 11, ps_of(c), c);
      }
    }
    on.step(ps_of(c));
    off.step(ps_of(c));
  }

  // Fully drained, and the two disciplines agree packet by packet.
  EXPECT_EQ(on.total_flits_ejected(), on.total_flits_generated());
  EXPECT_EQ(on.flits_in_network(), 0u);
  ASSERT_EQ(on.delivered().size(), off.delivered().size());
  for (std::size_t i = 0; i < on.delivered().size(); ++i) {
    const noc::PacketRecord& pa = on.delivered()[i];
    const noc::PacketRecord& pb = off.delivered()[i];
    EXPECT_EQ(pa.packet_id, pb.packet_id);
    EXPECT_EQ(pa.src, pb.src);
    EXPECT_EQ(pa.dst, pb.dst);
    EXPECT_EQ(pa.hops, pb.hops);
    EXPECT_EQ(pa.eject_time_ps, pb.eject_time_ps);
    EXPECT_EQ(pa.eject_noc_cycle, pb.eject_noc_cycle);
  }

  // The drained network is parked and its steps are observably free —
  // the skip counter advances by the full member count per cycle — while
  // the always-step network never skipped anything.
  EXPECT_EQ(on.island_active_nodes(0), 0);
  EXPECT_EQ(off.island_idle_steps_skipped(0), 0u);
  const std::uint64_t before = on.island_idle_steps_skipped(0);
  const std::uint64_t extra = 250;
  for (std::uint64_t c = total_cycles + 1; c <= total_cycles + extra; ++c) {
    on.step(ps_of(c));
  }
  EXPECT_EQ(on.island_idle_steps_skipped(0) - before,
            extra * static_cast<std::uint64_t>(n));
  EXPECT_EQ(on.delivered().size(), off.delivered().size());  // nothing new
}

/// Parking must be exact across clock-domain boundaries too: a quadrant
/// partition with a burst confined to one island leaves the other islands'
/// skip counters running at full speed.
TEST(Quiescence, IslandsParkIndependently) {
  NetworkConfig cfg;
  cfg.width = 4;
  cfg.height = 4;
  // Quadrants, row-major 4×4.
  cfg.island_of = {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  Network net(cfg);

  // A packet strictly inside island 0: node 0 -> node 5.
  net.ni(0).enqueue_packet(5, 4, ps_of(1), 1);
  const std::uint64_t cycles = 400;
  for (std::uint64_t c = 1; c <= cycles; ++c) {
    for (int isl = 0; isl < net.num_islands(); ++isl) net.tick_island(isl);
    for (int isl = 0; isl < net.num_islands(); ++isl) net.run_island_phases(isl, ps_of(c));
  }
  EXPECT_EQ(net.total_flits_ejected(), 4u);
  // Islands 1..3 saw no traffic at all: they park after their first cycle.
  for (int isl = 1; isl < 4; ++isl) {
    EXPECT_EQ(net.island_active_nodes(isl), 0) << "island " << isl;
    EXPECT_EQ(net.island_idle_steps_skipped(isl), 4 * (cycles - 1)) << "island " << isl;
  }
  EXPECT_EQ(net.island_active_nodes(0), 0);  // drained eventually
}

}  // namespace
}  // namespace nocdvfs
