// Tests for the extension workloads: closed-loop request–reply traffic
// (round-trip measurement semantics) and the step-load transient driver,
// plus the window-trace and per-class metrics they feed.

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sim/scenario.hpp"
#include "traffic/request_reply.hpp"
#include "traffic/step_load.hpp"

namespace nocdvfs {
namespace {

/// Forwarding decorator that shares ownership of a model built outside the
/// scenario, so a test can both hand it to run() (which destroys its copy
/// with the simulator) and inspect the model's counters afterwards.
class SharedModel final : public traffic::TrafficModel {
 public:
  explicit SharedModel(std::shared_ptr<traffic::TrafficModel> inner)
      : inner_(std::move(inner)) {}

  void node_tick(common::Picoseconds now, std::uint64_t noc_cycle,
                 noc::Network& net) override {
    inner_->node_tick(now, noc_cycle, net);
  }
  void on_packet_delivered(const noc::PacketRecord& record,
                           common::Picoseconds now) override {
    inner_->on_packet_delivered(record, now);
  }
  double offered_flits_per_node_cycle() const noexcept override {
    return inner_->offered_flits_per_node_cycle();
  }
  const char* name() const noexcept override { return inner_->name(); }

 private:
  std::shared_ptr<traffic::TrafficModel> inner_;
};

sim::Scenario custom_scenario(std::shared_ptr<traffic::TrafficModel> model) {
  sim::Scenario s;
  s.workload = sim::Scenario::Workload::Custom;
  s.network.width = 4;
  s.network.height = 4;
  s.network.num_vcs = 4;
  s.control_period = 2000;
  s.traffic_factory = [model](const sim::Scenario&) -> std::unique_ptr<traffic::TrafficModel> {
    return std::make_unique<SharedModel>(model);
  };
  return s;
}

sim::RunPhases short_phases() {
  sim::RunPhases phases;
  phases.warmup_node_cycles = 20000;
  phases.measure_node_cycles = 40000;
  phases.adaptive_warmup = false;
  return phases;
}

TEST(RequestReply, EveryRequestEventuallyGetsAReply) {
  noc::MeshTopology topo(4, 4);
  traffic::RequestReplyParams params;
  params.request_rate = 0.004;
  params.request_size = 2;
  params.reply_size = 6;
  params.service_node_cycles = 10;
  auto model = std::make_shared<traffic::RequestReplyTraffic>(topo, params);

  sim::Scenario s = custom_scenario(model);  // No-DVFS policy default
  s.phases = short_phases();
  const auto r = sim::run(s);
  EXPECT_GT(model->requests_issued(), 100u);
  // Replies lag requests only by what is in flight at the end.
  EXPECT_NEAR(static_cast<double>(model->replies_issued()),
              static_cast<double>(model->requests_issued()),
              0.05 * static_cast<double>(model->requests_issued()));
  EXPECT_GT(r.class1_packets, 0u);
  EXPECT_GT(r.class0_packets, 0u);
}

TEST(RequestReply, RttExceedsOneWayDelayPlusService) {
  noc::MeshTopology topo(4, 4);
  traffic::RequestReplyParams params;
  params.request_rate = 0.004;
  params.service_node_cycles = 25;
  auto model = std::make_shared<traffic::RequestReplyTraffic>(topo, params);

  sim::Scenario s = custom_scenario(model);
  s.phases = short_phases();
  const auto r = sim::run(s);
  ASSERT_GT(r.class1_packets, 50u);
  // RTT (class 1) >= one-way request delay (class 0) + 25 ns service.
  EXPECT_GT(r.avg_class1_delay_ns, r.avg_class0_delay_ns + 25.0);
}

TEST(RequestReply, RmsdInflatesRttMoreThanDmsd) {
  // The paper's Sec. III claim quantified. The operating point sits at the
  // λ_min knee (offered ≈ lambda_max/3), where RMSD pins the clock at
  // F_min with the network near saturation — its delay peak. DMSD instead
  // regulates the measured delay mixture to the target.
  noc::MeshTopology topo(4, 4);
  traffic::RequestReplyParams params;
  params.request_rate = 0.0065;  // ≈0.13 flits/cycle offered = lambda_max/3

  auto run_with = [&](sim::Policy policy) {
    auto model = std::make_shared<traffic::RequestReplyTraffic>(topo, params);
    sim::Scenario s = custom_scenario(model);
    s.policy.policy = policy;
    s.policy.lambda_max = 0.40;
    s.policy.target_delay_ns = 120.0;
    s.phases = short_phases();
    s.phases.adaptive_warmup = true;
    s.phases.warmup_node_cycles = 40000;
    s.phases.max_warmup_node_cycles = 400000;
    return sim::run(s);
  };
  const auto rmsd = run_with(sim::Policy::Rmsd);
  const auto dmsd = run_with(sim::Policy::Dmsd);
  ASSERT_GT(rmsd.class1_packets, 50u);
  ASSERT_GT(dmsd.class1_packets, 50u);
  EXPECT_GT(rmsd.avg_class1_delay_ns, 1.5 * dmsd.avg_class1_delay_ns);
}

TEST(RequestReply, ParameterValidation) {
  noc::MeshTopology topo(3, 3);
  traffic::RequestReplyParams p;
  p.request_rate = 1.5;
  EXPECT_THROW(traffic::RequestReplyTraffic(topo, p), std::invalid_argument);
  p = traffic::RequestReplyParams{};
  p.request_size = 0;
  EXPECT_THROW(traffic::RequestReplyTraffic(topo, p), std::invalid_argument);
  p = traffic::RequestReplyParams{};
  p.service_node_cycles = -1;
  EXPECT_THROW(traffic::RequestReplyTraffic(topo, p), std::invalid_argument);
}

TEST(StepLoad, SwitchesRateAtTheConfiguredInstant) {
  noc::MeshTopology topo(3, 3);
  noc::NetworkConfig ncfg;
  ncfg.width = 3;
  ncfg.height = 3;
  noc::Network net(ncfg);
  traffic::SyntheticTrafficParams before, after;
  before.lambda = 0.0;  // silent first phase
  before.packet_size = 4;
  after = before;
  after.lambda = 0.4;
  traffic::StepLoadTraffic model(topo, before, after, /*step_at_ps=*/50000);

  for (std::uint64_t t = 1000; t <= 40000; t += 1000) model.node_tick(t, 0, net);
  EXPECT_EQ(net.total_flits_generated(), 0u);
  EXPECT_FALSE(model.stepped());
  for (std::uint64_t t = 50000; t <= 150000; t += 1000) model.node_tick(t, 0, net);
  EXPECT_TRUE(model.stepped());
  EXPECT_GT(net.total_flits_generated(), 0u);
  EXPECT_DOUBLE_EQ(model.offered_flits_per_node_cycle(), 0.4);
}

TEST(StepLoad, WindowTraceShowsTheTransient) {
  noc::MeshTopology topo(4, 4);
  traffic::SyntheticTrafficParams before, after;
  before.lambda = 0.05;
  before.packet_size = 8;
  after = before;
  after.lambda = 0.30;
  // Step in the middle of the measured region.
  auto model = std::make_shared<traffic::StepLoadTraffic>(topo, before, after,
                                                          /*step_at_ps=*/40000ull * 1000ull);
  sim::Scenario s = custom_scenario(model);
  s.policy.policy = sim::Policy::Rmsd;
  s.policy.lambda_max = 0.45;
  s.phases = short_phases();
  const auto r = sim::run(s);
  ASSERT_GE(r.window_trace.size(), 10u);
  // Frequency before the step must be lower than after (Eq. 2 scales with
  // the offered rate).
  double f_early = 0.0, f_late = 0.0;
  for (const auto& w : r.window_trace) {
    if (w.t <= 30000ull * 1000ull) f_early = w.f_applied;
    f_late = w.f_applied;
  }
  EXPECT_GT(f_late, 1.5 * f_early);
}

TEST(WindowTrace, RecordedForEveryControlWindow) {
  sim::Scenario cfg;
  cfg.network.width = 3;
  cfg.network.height = 3;
  cfg.packet_size = 4;
  cfg.lambda = 0.1;
  cfg.control_period = 2000;
  cfg.phases.warmup_node_cycles = 10000;
  cfg.phases.measure_node_cycles = 10000;
  cfg.phases.adaptive_warmup = false;
  const auto r = sim::run(cfg);
  // 20000 node cycles at one update per 2000 → 10 windows (the final
  // boundary finalizes instead of updating).
  EXPECT_GE(r.window_trace.size(), 9u);
  EXPECT_LE(r.window_trace.size(), 10u);
  for (const auto& w : r.window_trace) {
    EXPECT_GT(w.f_applied, 0.0);
    EXPECT_GT(w.t, 0u);
  }
}

}  // namespace
}  // namespace nocdvfs
