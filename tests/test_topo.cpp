// The topo/ subsystem: topology shapes, the routing engine's class
// discipline, fault injection with up*/down* reroute, and the scenario
// pre-flight validation that ties them together.
//
// Structural invariants are checked per topology kind over several sizes:
// peer symmetry (following a directed link and its return port round-trips),
// the directed-link inventory, tile ownership (every router owns exactly
// `concentration` NIs, each on a distinct local port), and that walking
// dor_port reaches the destination in exactly hop_distance() steps — i.e.
// the deterministic route is the canonical minimal path everywhere.

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "noc/routing.hpp"
#include "sim/scenario.hpp"
#include "topo/fault_model.hpp"
#include "topo/routing_engine.hpp"
#include "topo/topology.hpp"

namespace nocdvfs {
namespace {

using topo::FaultModel;
using topo::RoutingEngine;
using topo::Topology;
using topo::TopologyKind;

struct Shape {
  TopologyKind kind;
  int width;
  int height;
  int concentration;
};

std::vector<Shape> all_shapes() {
  return {
      {TopologyKind::Mesh, 4, 4, 1},      {TopologyKind::Mesh, 5, 3, 1},
      {TopologyKind::Torus, 4, 4, 1},     {TopologyKind::Torus, 5, 3, 1},
      {TopologyKind::Cmesh, 4, 4, 4},     {TopologyKind::Cmesh, 6, 4, 2},
      {TopologyKind::Dragonfly, 4, 3, 1}, {TopologyKind::Dragonfly, 6, 4, 2},
  };
}

std::string label(const Shape& s) {
  return std::string(topo::to_string(s.kind)) + " " + std::to_string(s.width) + "x" +
         std::to_string(s.height) + " c=" + std::to_string(s.concentration);
}

TEST(TopologyParse, CaseInsensitiveWithOffenderInError) {
  EXPECT_EQ(topo::topology_kind_from_string("mesh"), TopologyKind::Mesh);
  EXPECT_EQ(topo::topology_kind_from_string("TORUS"), TopologyKind::Torus);
  EXPECT_EQ(topo::topology_kind_from_string("CMesh"), TopologyKind::Cmesh);
  EXPECT_EQ(topo::topology_kind_from_string("Dragonfly"), TopologyKind::Dragonfly);
  try {
    topo::topology_kind_from_string("hypercube");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hypercube"), std::string::npos) << what;
    EXPECT_NE(what.find("valid"), std::string::npos) << what;
    EXPECT_NE(what.find("torus"), std::string::npos) << what;
  }
}

TEST(TopologyMake, RejectsIllegalShapes) {
  EXPECT_THROW(Topology::make(TopologyKind::Mesh, 4, 4, 2), std::invalid_argument);
  EXPECT_THROW(Topology::make(TopologyKind::Torus, 1, 4, 1), std::invalid_argument);
  EXPECT_THROW(Topology::make(TopologyKind::Cmesh, 4, 4, 3), std::invalid_argument);
  EXPECT_THROW(Topology::make(TopologyKind::Cmesh, 5, 4, 2), std::invalid_argument);
  EXPECT_THROW(Topology::make(TopologyKind::Cmesh, 4, 3, 4), std::invalid_argument);
  EXPECT_THROW(Topology::make(TopologyKind::Dragonfly, 5, 3, 2), std::invalid_argument);
  EXPECT_THROW(Topology::make(TopologyKind::Dragonfly, 4, 1, 1), std::invalid_argument);
  // The error names the shape and the reason.
  try {
    Topology::make(TopologyKind::Cmesh, 4, 4, 3);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cmesh"), std::string::npos) << what;
    EXPECT_NE(what.find("concentration"), std::string::npos) << what;
  }
}

TEST(TopologyStructure, PeerSymmetryAndLinkInventory) {
  for (const Shape& s : all_shapes()) {
    SCOPED_TRACE(label(s));
    const auto t = Topology::make(s.kind, s.width, s.height, s.concentration);
    int directed = 0;
    for (int r = 0; r < t->num_routers(); ++r) {
      EXPECT_LE(t->radix(r), noc::kMaxPorts);
      EXPECT_LE(t->num_net_ports(r), t->radix(r));
      for (int p = 0; p < t->num_net_ports(r); ++p) {
        const topo::PortPeer far = t->peer(r, p);
        if (!far.valid()) continue;  // unwired mesh edge
        ++directed;
        ASSERT_GE(far.router, 0);
        ASSERT_LT(far.router, t->num_routers());
        ASSERT_NE(far.router, r) << "self-link at port " << p;
        // The far end's return port points straight back here.
        const topo::PortPeer back = t->peer(far.router, far.port);
        ASSERT_TRUE(back.valid());
        EXPECT_EQ(back.router, r);
        EXPECT_EQ(back.port, p);
      }
    }
    EXPECT_EQ(directed, t->num_directed_links());
    EXPECT_EQ(directed % 2, 0) << "every undirected link must appear twice";
  }
}

TEST(TopologyStructure, TileOwnershipIsAPartition) {
  for (const Shape& s : all_shapes()) {
    SCOPED_TRACE(label(s));
    const auto t = Topology::make(s.kind, s.width, s.height, s.concentration);
    std::vector<int> nis_of(static_cast<std::size_t>(t->num_routers()), 0);
    std::set<std::pair<int, int>> used_ports;
    for (noc::NodeId n = 0; n < t->num_nodes(); ++n) {
      const int r = t->router_of(n);
      ASSERT_GE(r, 0);
      ASSERT_LT(r, t->num_routers());
      ++nis_of[static_cast<std::size_t>(r)];
      const int lp = t->local_port(n);
      // Local ports live past the network ports and are distinct per NI.
      EXPECT_GE(lp, t->num_net_ports(r));
      EXPECT_LT(lp, t->radix(r));
      EXPECT_TRUE(used_ports.insert({r, lp}).second)
          << "node " << n << " shares local port " << lp << " on router " << r;
    }
    for (int count : nis_of) EXPECT_EQ(count, s.concentration);
  }
}

TEST(TopologyStructure, DorWalkReachesInHopDistanceSteps) {
  for (const Shape& s : all_shapes()) {
    SCOPED_TRACE(label(s));
    const auto t = Topology::make(s.kind, s.width, s.height, s.concentration);
    for (int a = 0; a < t->num_routers(); ++a) {
      EXPECT_EQ(t->hop_distance(a, a), 0);
      for (int b = 0; b < t->num_routers(); ++b) {
        if (a == b) continue;
        const int d = t->hop_distance(a, b);
        ASSERT_GT(d, 0);
        int here = a;
        for (int step = 0; step < d; ++step) {
          const int p = t->dor_port(noc::RoutingAlgo::XY, here, b);
          ASSERT_GE(p, 0);
          ASSERT_LT(p, t->num_net_ports(here));
          const topo::PortPeer far = t->peer(here, p);
          ASSERT_TRUE(far.valid());
          here = far.router;
        }
        EXPECT_EQ(here, b) << "dor walk " << a << "->" << b << " did not arrive in " << d
                           << " steps";
      }
    }
  }
}

TEST(TopologyStructure, MinimalPortsAllDecreaseDistance) {
  for (const Shape& s : all_shapes()) {
    SCOPED_TRACE(label(s));
    const auto t = Topology::make(s.kind, s.width, s.height, s.concentration);
    for (int a = 0; a < t->num_routers(); ++a) {
      for (int b = 0; b < t->num_routers(); ++b) {
        if (a == b) continue;
        std::array<int, noc::kMaxPorts> ports{};
        const int n = t->minimal_ports(a, b, ports);
        ASSERT_GT(n, 0) << a << "->" << b;
        int prev = -1;
        for (int i = 0; i < n; ++i) {
          EXPECT_GT(ports[static_cast<std::size_t>(i)], prev) << "ports must ascend";
          prev = ports[static_cast<std::size_t>(i)];
          const topo::PortPeer far = t->peer(a, ports[static_cast<std::size_t>(i)]);
          ASSERT_TRUE(far.valid());
          EXPECT_EQ(t->hop_distance(far.router, b), t->hop_distance(a, b) - 1)
              << "port " << ports[static_cast<std::size_t>(i)] << " of " << a << "->" << b
              << " is not on a minimal path";
        }
      }
    }
  }
}

TEST(TopologyStructure, DatelineClassesOnlyWhereNeeded) {
  EXPECT_EQ(Topology::make(TopologyKind::Mesh, 4, 4, 1)->num_dor_classes(), 1);
  EXPECT_EQ(Topology::make(TopologyKind::Cmesh, 4, 4, 4)->num_dor_classes(), 1);
  EXPECT_EQ(Topology::make(TopologyKind::Torus, 4, 4, 1)->num_dor_classes(), 2);
  EXPECT_EQ(Topology::make(TopologyKind::Dragonfly, 4, 3, 1)->num_dor_classes(), 2);
}

TEST(RoutingEngineVcs, RequiredVcsFollowsClassDiscipline) {
  const auto mesh = Topology::make(TopologyKind::Mesh, 4, 4, 1);
  const auto torus = Topology::make(TopologyKind::Torus, 4, 4, 1);
  EXPECT_EQ(RoutingEngine::required_vcs(*mesh, noc::RoutingAlgo::XY), 1);
  EXPECT_EQ(RoutingEngine::required_vcs(*mesh, noc::RoutingAlgo::Adaptive), 2);
  EXPECT_EQ(RoutingEngine::required_vcs(*mesh, noc::RoutingAlgo::Ugal), 2);
  EXPECT_EQ(RoutingEngine::required_vcs(*torus, noc::RoutingAlgo::XY), 2);
  EXPECT_EQ(RoutingEngine::required_vcs(*torus, noc::RoutingAlgo::Adaptive), 3);
  EXPECT_EQ(RoutingEngine::required_vcs(*torus, noc::RoutingAlgo::Ugal), 4);
}

TEST(FaultSpec, GrammarAcceptanceAndRejection) {
  EXPECT_TRUE(FaultModel::spec_is_off(""));
  EXPECT_TRUE(FaultModel::spec_is_off("off"));
  EXPECT_TRUE(FaultModel::spec_is_off("NONE"));
  EXPECT_FALSE(FaultModel::spec_is_off("links:1"));

  EXPECT_EQ(FaultModel::spec_problem("links:2"), "");
  EXPECT_EQ(FaultModel::spec_problem("routers:1@5000"), "");
  EXPECT_EQ(FaultModel::spec_problem("links:1@0+routers:2@9000"), "");
  EXPECT_NE(FaultModel::spec_problem("links"), "");
  EXPECT_NE(FaultModel::spec_problem("links:-1"), "");
  EXPECT_NE(FaultModel::spec_problem("bridges:1"), "");
  EXPECT_NE(FaultModel::spec_problem("links:1@"), "");
  // The problem string names the offending token.
  EXPECT_NE(FaultModel::spec_problem("bridges:1").find("bridges"), std::string::npos);
}

TEST(FaultInjection, EventsFireOnScheduleAndAreSeedStable) {
  const auto t = Topology::make(TopologyKind::Torus, 4, 4, 1);
  FaultModel faults(*t, "links:2@100+routers:1@5000", 7);
  EXPECT_TRUE(faults.has_events());
  EXPECT_TRUE(faults.has_pending());
  EXPECT_FALSE(faults.due(99));
  EXPECT_TRUE(faults.due(100));

  EXPECT_TRUE(faults.advance_to(100));
  EXPECT_EQ(faults.failed_links(), 2);
  EXPECT_EQ(faults.failed_routers(), 0);
  EXPECT_TRUE(faults.has_pending());
  EXPECT_FALSE(faults.due(4999));

  EXPECT_TRUE(faults.advance_to(5000));
  EXPECT_EQ(faults.failed_routers(), 1);
  EXPECT_FALSE(faults.has_pending());

  // Same spec + seed kills the same elements...
  FaultModel again(*t, "links:2@100+routers:1@5000", 7);
  again.advance_to(5000);
  for (int r = 0; r < t->num_routers(); ++r) {
    EXPECT_EQ(faults.router_failed(r), again.router_failed(r));
    for (int p = 0; p < t->num_net_ports(r); ++p) {
      EXPECT_EQ(faults.link_failed(r, p), again.link_failed(r, p));
    }
  }
  // ...and the selection actually depends on the seed: some nearby seed
  // must pick a different fault set.
  const auto same_as_base = [&](const FaultModel& other) {
    for (int r = 0; r < t->num_routers(); ++r) {
      if (faults.router_failed(r) != other.router_failed(r)) return false;
      for (int p = 0; p < t->num_net_ports(r); ++p) {
        if (faults.link_failed(r, p) != other.link_failed(r, p)) return false;
      }
    }
    return true;
  };
  bool found_different = false;
  for (std::uint64_t seed = 8; seed < 24 && !found_different; ++seed) {
    FaultModel other(*t, "links:2@100+routers:1@5000", seed);
    other.advance_to(5000);
    found_different = !same_as_base(other);
  }
  EXPECT_TRUE(found_different) << "fault selection ignores the seed";
}

TEST(FaultInjection, FailedLinkIsDeadInBothDirections) {
  const auto t = Topology::make(TopologyKind::Torus, 4, 4, 1);
  FaultModel faults(*t, "links:3", 11);
  faults.advance_to(0);
  int directed_dead = 0;
  for (int r = 0; r < t->num_routers(); ++r) {
    for (int p = 0; p < t->num_net_ports(r); ++p) {
      if (!faults.link_failed(r, p)) continue;
      ++directed_dead;
      const topo::PortPeer far = t->peer(r, p);
      ASSERT_TRUE(far.valid());
      EXPECT_TRUE(faults.link_failed(far.router, far.port))
          << "reverse direction of a failed link must be failed too";
    }
  }
  EXPECT_EQ(directed_dead, 2 * faults.failed_links());
}

TEST(FaultInjection, NeverKillsTheLastRouter) {
  const auto t = Topology::make(TopologyKind::Mesh, 2, 2, 1);
  FaultModel faults(*t, "routers:99", 3);
  faults.advance_to(0);
  EXPECT_LT(faults.failed_routers(), t->num_routers());
  EXPECT_GE(faults.failed_routers(), 1);
}

TEST(RerouteTables, FaultFreeTablesBendNothing) {
  for (const Shape& s : all_shapes()) {
    SCOPED_TRACE(label(s));
    const auto t = Topology::make(s.kind, s.width, s.height, s.concentration);
    RoutingEngine engine(*t, noc::RoutingAlgo::XY,
                         RoutingEngine::required_vcs(*t, noc::RoutingAlgo::XY));
    engine.rebuild_tables();
    EXPECT_EQ(engine.unreachable_pairs(), 0);
    EXPECT_EQ(engine.rerouted_pairs(), 0);
    for (noc::NodeId a = 0; a < t->num_nodes(); ++a) {
      for (noc::NodeId b = 0; b < t->num_nodes(); ++b) {
        EXPECT_TRUE(engine.reachable(a, b));
      }
    }
  }
}

TEST(RerouteTables, LinkFaultReroutesWithoutDisconnectingTorus) {
  const auto t = Topology::make(TopologyKind::Torus, 4, 4, 1);
  RoutingEngine engine(*t, noc::RoutingAlgo::XY, 2);
  FaultModel faults(*t, "links:2", 5);
  engine.set_fault_model(&faults);
  faults.advance_to(0);
  engine.rebuild_tables();
  EXPECT_TRUE(engine.hook_active());
  // A 4x4 torus is 4-regular: two dead links cannot disconnect it, but
  // they must bend some routes off the fault-free table.
  EXPECT_EQ(engine.unreachable_pairs(), 0);
  EXPECT_GT(engine.rerouted_pairs(), 0);
  for (noc::NodeId a = 0; a < t->num_nodes(); ++a) {
    for (noc::NodeId b = 0; b < t->num_nodes(); ++b) {
      EXPECT_TRUE(engine.reachable(a, b));
    }
  }
}

TEST(RerouteTables, DeadRouterMakesItsNisUnreachable) {
  const auto t = Topology::make(TopologyKind::Mesh, 4, 4, 1);
  RoutingEngine engine(*t, noc::RoutingAlgo::XY, 1);
  FaultModel faults(*t, "routers:1", 9);
  engine.set_fault_model(&faults);
  faults.advance_to(0);
  engine.rebuild_tables();
  int dead = -1;
  for (int r = 0; r < t->num_routers(); ++r) {
    if (faults.router_failed(r)) dead = r;
  }
  ASSERT_GE(dead, 0);
  const int n = t->num_nodes();
  // Every ordered pair touching the dead tile is unreachable: (n-1) sources
  // into it plus (n-1) destinations out of it.
  EXPECT_EQ(engine.unreachable_pairs(), 2 * (n - 1));
  for (noc::NodeId other = 0; other < n; ++other) {
    if (other == dead) continue;
    EXPECT_FALSE(engine.reachable(other, dead));
    EXPECT_FALSE(engine.reachable(dead, other));
    EXPECT_TRUE(engine.reachable(other, other));
  }
}

// --- scenario pre-flight validation -----------------------------------

TEST(TopoConfig, VcBudgetCheckedAgainstClassDiscipline) {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.network.topology = TopologyKind::Torus;
  s.network.routing = noc::RoutingAlgo::Ugal;
  s.network.num_vcs = 2;  // UGAL on a torus needs 4
  const std::string problem = sim::topo_config_problem(s);
  EXPECT_NE(problem, "");
  EXPECT_NE(problem.find("virtual channels"), std::string::npos) << problem;
  s.network.num_vcs = 4;
  EXPECT_EQ(sim::topo_config_problem(s), "");
}

TEST(TopoConfig, ThermalRequiresPlainMesh) {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.thermal = true;
  EXPECT_EQ(sim::topo_config_problem(s), "");
  s.network.topology = TopologyKind::Torus;
  EXPECT_NE(sim::topo_config_problem(s), "");
}

TEST(TopoConfig, IslandPartitionMayNotSplitTiles) {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.network.topology = TopologyKind::Cmesh;
  s.network.concentration = 4;
  s.network.routing = noc::RoutingAlgo::XY;
  s.islands = "quadrants";  // each 2x2 NI quadrant is exactly one cmesh tile
  EXPECT_EQ(sim::topo_config_problem(s), "");
  s.islands = "rows";  // a row slices every 2x2 tile in half
  const std::string problem = sim::topo_config_problem(s);
  EXPECT_NE(problem, "");
  EXPECT_NE(problem.find("tile"), std::string::npos) << problem;
}

TEST(TopoConfig, FaultSpecValidatedUpFront) {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.network.faults = "links:nope";
  EXPECT_NE(sim::topo_config_problem(s), "");
  s.network.faults = "links:1@2000";
  EXPECT_EQ(sim::topo_config_problem(s), "");
}

// --- end-to-end delivery on every topology x algorithm ------------------

struct EndToEndCase {
  TopologyKind kind;
  int width, height, concentration;
  const char* routing;
  int vcs;
};

TEST(TopoEndToEnd, EveryTopologyAlgorithmPairDelivers) {
  const std::vector<EndToEndCase> cases = {
      {TopologyKind::Torus, 4, 4, 1, "xy", 2},
      {TopologyKind::Torus, 4, 4, 1, "yx", 2},
      {TopologyKind::Torus, 4, 4, 1, "adaptive", 3},
      {TopologyKind::Torus, 4, 4, 1, "ugal", 4},
      {TopologyKind::Cmesh, 4, 4, 4, "xy", 1},
      {TopologyKind::Cmesh, 4, 4, 4, "adaptive", 2},
      {TopologyKind::Dragonfly, 4, 3, 1, "xy", 2},
      {TopologyKind::Dragonfly, 4, 3, 1, "ugal", 4},
      {TopologyKind::Mesh, 4, 4, 1, "adaptive", 2},
      {TopologyKind::Mesh, 4, 4, 1, "ugal", 2},
  };
  for (const EndToEndCase& c : cases) {
    SCOPED_TRACE(std::string(topo::to_string(c.kind)) + " + " + c.routing);
    sim::Scenario s;
    s.network.width = c.width;
    s.network.height = c.height;
    s.network.topology = c.kind;
    s.network.concentration = c.concentration;
    s.network.routing = noc::routing_algo_from_string(c.routing);
    s.network.num_vcs = c.vcs;
    s.lambda = 0.05;
    s.seed = 13;
    s.phases.adaptive_warmup = false;
    s.phases.warmup_node_cycles = 2000;
    s.phases.measure_node_cycles = 8000;
    const sim::RunResult r = sim::run(s);
    EXPECT_GT(r.packets_delivered, 100u);
    EXPECT_FALSE(r.saturated);
    EXPECT_EQ(r.dropped_packets, 0u);
    EXPECT_EQ(r.unreachable_pairs, 0);
    EXPECT_GT(r.avg_hops, 1.0);
    EXPECT_GE(static_cast<double>(r.max_hops), r.avg_hops);
  }
}

TEST(TopoEndToEnd, FaultedTorusReroutesWithoutLoss) {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.network.topology = TopologyKind::Torus;
  s.network.routing = noc::RoutingAlgo::XY;
  s.network.num_vcs = 2;
  s.network.faults = "links:2@0";
  s.network.fault_seed = 5;
  s.lambda = 0.05;
  s.seed = 13;
  s.phases.adaptive_warmup = false;
  s.phases.warmup_node_cycles = 2000;
  s.phases.measure_node_cycles = 8000;
  const sim::RunResult r = sim::run(s);
  EXPECT_GT(r.packets_delivered, 100u);
  EXPECT_EQ(r.failed_links, 2);
  EXPECT_GT(r.rerouted_pairs, 0);
  EXPECT_EQ(r.unreachable_pairs, 0);
  EXPECT_EQ(r.dropped_packets, 0u);
}

TEST(TopoEndToEnd, DeadRouterDropsAreAccounted) {
  sim::Scenario s;
  s.network.width = 4;
  s.network.height = 4;
  s.network.topology = TopologyKind::Mesh;
  s.network.routing = noc::RoutingAlgo::XY;
  s.network.faults = "routers:1@4000";
  s.network.fault_seed = 9;
  s.lambda = 0.05;
  s.seed = 13;
  s.phases.adaptive_warmup = false;
  s.phases.warmup_node_cycles = 2000;
  s.phases.measure_node_cycles = 10000;
  const sim::RunResult r = sim::run(s);
  EXPECT_GT(r.packets_delivered, 100u);
  EXPECT_EQ(r.failed_routers, 1);
  // 15 live tiles each refuse traffic to the dead one, and the dead tile's
  // own sources are refused entirely: drops must be visible and accounted.
  EXPECT_GT(r.dropped_packets, 0u);
  EXPECT_EQ(r.unreachable_pairs, 2 * (16 - 1));
}

}  // namespace
}  // namespace nocdvfs
