// Router-level tests: a single router wired to hand-driven channels so the
// pipeline timing, credit flow, VC lifecycle and failure modes can be
// observed cycle by cycle.

#include <gtest/gtest.h>

#include <optional>

#include "noc/channel.hpp"
#include "noc/router.hpp"

namespace nocdvfs::noc {
namespace {

Flit make_flit(NodeId src, NodeId dst, int index, int size, int vc) {
  Flit f;
  f.packet_id = 1;
  f.src = src;
  f.dst = dst;
  f.flit_index = static_cast<std::uint16_t>(index);
  f.packet_size = static_cast<std::uint16_t>(size);
  f.head = (index == 0);
  f.tail = (index == size - 1);
  f.vc = static_cast<std::uint8_t>(vc);
  return f;
}

/// Router 0 of a 2×1 mesh: ports Local and East are wired, the rest are
/// absent (mesh edge). The test drives the channels directly.
class RouterHarness {
 public:
  explicit RouterHarness(RouterConfig cfg = RouterConfig{})
      : topo_(2, 1), router_(0, topo_, cfg) {
    router_.connect_input(PortDir::Local, &in_local, &credit_to_local_src);
    router_.connect_input(PortDir::East, &in_east, &credit_to_east_src);
    router_.connect_output(PortDir::Local, &out_local, &credit_from_local_sink);
    router_.connect_output(PortDir::East, &out_east, &credit_from_east_sink);
  }

  /// One NoC cycle: channels advance, router receives and computes.
  void cycle() {
    for (FlitChannel* ch : {&in_local, &in_east, &out_local, &out_east}) ch->tick();
    for (CreditChannel* ch :
         {&credit_to_local_src, &credit_to_east_src, &credit_from_local_sink,
          &credit_from_east_sink}) {
      ch->tick();
    }
    router_.receive_phase();
    router_.compute_phase();
  }

  /// Consume the credits the router sends back towards the flit sources —
  /// what a protocol-respecting upstream does every cycle. Tests that
  /// inspect credits pop the channels themselves instead.
  void drain_source_credits() {
    (void)credit_to_local_src.pop();
    (void)credit_to_east_src.pop();
  }

  Router& router() { return router_; }

  MeshTopology topo_;
  FlitChannel in_local{1}, in_east{1}, out_local{1}, out_east{1};
  CreditChannel credit_to_local_src{1}, credit_to_east_src{1};
  CreditChannel credit_from_local_sink{1}, credit_from_east_sink{1};

 private:
  Router router_;
};

TEST(Router, HeadFlitPipelineLatency) {
  RouterHarness h;
  // Single-flit packet destined to node 1 (East). Pushed at cycle 0 → the
  // channel delivers at cycle 1 (RC), VA at 2, SA+ST at 3, and the output
  // link delivers at cycle 4.
  h.in_local.push(make_flit(0, 1, 0, 1, 0));
  std::optional<Flit> got;
  int arrival_cycle = -1;
  for (int cyc = 1; cyc <= 6; ++cyc) {
    h.cycle();
    if (auto f = h.out_east.pop()) {
      got = f;
      arrival_cycle = cyc;
      break;
    }
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(arrival_cycle, 4);
  EXPECT_EQ(got->dst, 1);
  EXPECT_EQ(got->hops, 1);
}

TEST(Router, RoutesToLocalWhenDestinationIsSelf) {
  RouterHarness h;
  h.in_east.push(make_flit(1, 0, 0, 1, 0));
  std::optional<Flit> got;
  for (int cyc = 0; cyc < 8 && !got; ++cyc) {
    h.cycle();
    got = h.out_local.pop();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->dst, 0);
}

TEST(Router, CreditDecrementsOnTraversalAndReturnsUpstream) {
  RouterConfig cfg;
  cfg.vc_buffer_depth = 4;
  RouterHarness h(cfg);
  const int before = h.router().output_credits(PortDir::East, 0);
  EXPECT_EQ(before, 4);

  h.in_local.push(make_flit(0, 1, 0, 1, 0));
  bool credit_seen = false;
  int credits_after_st = -1;
  for (int cyc = 1; cyc <= 6; ++cyc) {
    h.cycle();
    if (h.out_east.pop()) credits_after_st = h.router().output_credits(PortDir::East, 0);
    if (auto c = h.credit_to_local_src.pop()) {
      credit_seen = true;
      EXPECT_EQ(c->vc, 0);
    }
  }
  // The flit was forced onto some East VC; exactly one VC lost a credit.
  int total = 0;
  for (int v = 0; v < cfg.num_vcs; ++v) total += h.router().output_credits(PortDir::East, v);
  EXPECT_EQ(total, 4 * cfg.num_vcs - 1);
  EXPECT_GE(credits_after_st, 0);
  EXPECT_TRUE(credit_seen) << "freed buffer slot must send a credit upstream";
}

TEST(Router, TailReleasesOutputVc) {
  RouterHarness h;
  constexpr int kSize = 3;
  for (int i = 0; i < kSize; ++i) {
    h.in_local.push(make_flit(0, 1, i, kSize, 0));
    h.cycle();
    h.drain_source_credits();
  }
  // Drain everything; afterwards no East VC may remain allocated.
  for (int cyc = 0; cyc < 12; ++cyc) {
    h.cycle();
    h.drain_source_credits();
    (void)h.out_east.pop();
  }
  for (int v = 0; v < h.router().config().num_vcs; ++v) {
    EXPECT_FALSE(h.router().output_vc_allocated(PortDir::East, v));
    EXPECT_EQ(h.router().input_vc_state(PortDir::Local, v), VcStateKind::Idle);
  }
  EXPECT_EQ(h.router().buffered_flits(), 0);
}

TEST(Router, MultiFlitPacketStreamsInOrder) {
  RouterHarness h;
  constexpr int kSize = 5;
  int pushed = 0;
  std::vector<int> received;
  for (int cyc = 0; cyc < 20; ++cyc) {
    if (pushed < kSize) {
      h.in_local.push(make_flit(0, 1, pushed, kSize, 2));
      ++pushed;
    }
    h.cycle();
    h.drain_source_credits();
    if (auto f = h.out_east.pop()) {
      received.push_back(f->flit_index);
      // Ideal downstream sink: consume and return the credit.
      h.credit_from_east_sink.push(Credit{f->vc});
    }
  }
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kSize));
  for (int i = 0; i < kSize; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(Router, CreditStarvationStallsAndCreditResumesFlow) {
  RouterConfig cfg;
  cfg.vc_buffer_depth = 2;
  RouterHarness h(cfg);
  // 6-flit packet; downstream never returns credits, so exactly
  // vc_buffer_depth flits can traverse before the router stalls.
  constexpr int kSize = 6;
  int pushed = 0;
  int received = 0;
  for (int cyc = 0; cyc < 30; ++cyc) {
    // Respect the credit protocol on the upstream side: only 2 outstanding.
    if (pushed < kSize && pushed - received - h.router().buffered_flits() < 2) {
      // Count credits returned to us to decide whether we may push.
    }
    if (auto c = h.credit_to_local_src.pop()) (void)c;
    if (pushed < kSize && h.router().input_vc_occupancy(PortDir::Local, 1) < 2) {
      h.in_local.push(make_flit(0, 1, pushed, kSize, 1));
      ++pushed;
    }
    h.cycle();
    if (h.out_east.pop()) ++received;
  }
  EXPECT_EQ(received, 2) << "only vc_buffer_depth flits may pass without credits";

  // Return one credit on the VC the router picked: exactly one more flit.
  int granted_vc = -1;
  for (int v = 0; v < cfg.num_vcs; ++v) {
    if (h.router().output_vc_allocated(PortDir::East, v)) granted_vc = v;
  }
  ASSERT_GE(granted_vc, 0);
  h.credit_from_east_sink.push(Credit{static_cast<std::uint8_t>(granted_vc)});
  for (int cyc = 0; cyc < 6; ++cyc) {
    h.cycle();
    if (h.out_east.pop()) ++received;
  }
  EXPECT_EQ(received, 3);
}

TEST(Router, TwoInputsToSameOutputShareBandwidthFairly) {
  RouterConfig cfg;
  cfg.vc_buffer_depth = 8;
  RouterHarness h(cfg);
  // Local and East both stream single-flit packets to... East input routes
  // to Local (dst 0), Local input routes East (dst 1) — different outputs,
  // no conflict. To create a conflict, both must target the same output:
  // only Local->East and East->Local exist in a 2-node mesh, so instead
  // check both flows progress concurrently at full rate.
  int sent = 0;
  int got_east = 0, got_local = 0;
  for (int cyc = 0; cyc < 40; ++cyc) {
    if (sent < 16) {
      h.in_local.push(make_flit(0, 1, 0, 1, static_cast<std::uint8_t>(sent % 4)));
      h.in_east.push(make_flit(1, 0, 0, 1, static_cast<std::uint8_t>(sent % 4)));
      ++sent;
    }
    // Keep credits flowing back so neither direction starves.
    if (auto c = h.credit_to_local_src.pop()) (void)c;
    if (auto c = h.credit_to_east_src.pop()) (void)c;
    h.cycle();
    if (h.out_east.pop()) ++got_east;
    if (h.out_local.pop()) ++got_local;
    // Sink returns credits immediately.
    while (true) break;
  }
  EXPECT_EQ(got_east, 16);
  EXPECT_EQ(got_local, 16);
}

TEST(Router, ActivityCountersTrackFlits) {
  RouterHarness h;
  constexpr int kSize = 4;
  for (int i = 0; i < kSize; ++i) {
    h.in_local.push(make_flit(0, 1, i, kSize, 0));
    h.cycle();
    h.drain_source_credits();
    (void)h.out_east.pop();
  }
  for (int cyc = 0; cyc < 12; ++cyc) {
    h.cycle();
    h.drain_source_credits();
    (void)h.out_east.pop();
  }
  const auto& a = h.router().activity();
  EXPECT_EQ(a.buffer_writes, static_cast<std::uint64_t>(kSize));
  EXPECT_EQ(a.buffer_reads, static_cast<std::uint64_t>(kSize));
  EXPECT_EQ(a.crossbar_traversals, static_cast<std::uint64_t>(kSize));
  EXPECT_EQ(a.link_flit_hops, static_cast<std::uint64_t>(kSize));
  EXPECT_EQ(a.vc_alloc_grants, 1u);
  EXPECT_EQ(a.sw_alloc_grants, static_cast<std::uint64_t>(kSize));
}

TEST(Router, BufferOverflowFromCreditViolationIsCaught) {
  RouterConfig cfg;
  cfg.vc_buffer_depth = 2;
  RouterHarness h(cfg);
  // Downstream never returns credits; we (the upstream) ignore the credit
  // protocol and push one flit per cycle. depth flits traverse, depth more
  // buffer up; the next arrival must trip the invariant.
  constexpr int kFlits = 10;
  EXPECT_THROW(
      {
        for (int i = 0; i < kFlits; ++i) {
          h.in_local.push(make_flit(0, 1, i, kFlits, 3));
          h.cycle();
        }
      },
      common::InvariantViolation);
}

TEST(Router, ConfigValidation) {
  MeshTopology topo(2, 1);
  RouterConfig bad;
  bad.num_vcs = 0;
  EXPECT_THROW(Router(0, topo, bad), std::invalid_argument);
  bad.num_vcs = 65;
  EXPECT_THROW(Router(0, topo, bad), std::invalid_argument);
  bad.num_vcs = 4;
  bad.vc_buffer_depth = 0;
  EXPECT_THROW(Router(0, topo, bad), std::invalid_argument);
  EXPECT_THROW(Router(7, topo, RouterConfig{}), std::invalid_argument);
}

TEST(Router, WiringValidation) {
  MeshTopology topo(2, 1);
  Router r(0, topo, RouterConfig{});
  FlitChannel f(1);
  CreditChannel c(1);
  EXPECT_THROW(r.connect_input(PortDir::Local, nullptr, &c), std::invalid_argument);
  EXPECT_THROW(r.connect_output(PortDir::East, &f, nullptr), std::invalid_argument);
  r.connect_input(PortDir::Local, &f, &c);
  EXPECT_THROW(r.connect_input(PortDir::Local, &f, &c), common::InvariantViolation);
}

}  // namespace
}  // namespace nocdvfs::noc
