// Randomized property test of the router's credit loop: drive a single
// router with protocol-respecting but randomly timed traffic and a sink
// that returns credits after random delays, asserting the conservation
// invariant every cycle:
//
//   for every output VC:  router credits + credits in flight back to the
//   router + flits the sink has not yet credited == buffer depth
//
// and, at the end, complete in-order delivery of every packet.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "noc/channel.hpp"
#include "noc/network.hpp"
#include "noc/router.hpp"

namespace nocdvfs::noc {
namespace {

struct FuzzParams {
  int num_vcs;
  int depth;
  std::uint64_t seed;
};

class RouterFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(RouterFuzz, CreditLoopConservesAndDeliversInOrder) {
  const auto [num_vcs, depth, seed] = GetParam();
  RouterConfig cfg;
  cfg.num_vcs = num_vcs;
  cfg.vc_buffer_depth = depth;
  MeshTopology topo(2, 1);
  Router router(0, topo, cfg);

  FlitChannel in_local(1), out_east(1), in_east(1), out_local(1);
  CreditChannel credit_src(1), credit_sink(1), credit_src_e(1), credit_sink_l(1);
  router.connect_input(PortDir::Local, &in_local, &credit_src);
  router.connect_output(PortDir::East, &out_east, &credit_sink);
  router.connect_input(PortDir::East, &in_east, &credit_src_e);
  router.connect_output(PortDir::Local, &out_local, &credit_sink_l);

  common::Rng rng(seed);
  // Upstream state: our credit view of the router's Local input buffer.
  std::vector<int> up_credits(static_cast<std::size_t>(num_vcs), depth);
  // Sink state: flits received per East VC not yet credited (with a random
  // return delay queue).
  std::vector<std::deque<int>> pending_credit_delay(static_cast<std::size_t>(num_vcs));

  struct SendState {
    std::uint64_t packet = 0;
    int flit = 0;
    int size = 0;
    int vc = -1;
    bool active = false;
  } send;
  std::uint64_t next_packet_id = 1;
  constexpr std::uint64_t kPackets = 60;

  std::map<std::uint64_t, int> received_flits;  // packet id -> next expected index
  std::uint64_t packets_done = 0;

  for (int cyc = 0; cyc < 20000 && packets_done < kPackets; ++cyc) {
    for (auto* ch : {&in_local, &out_east, &in_east, &out_local}) ch->tick();
    for (auto* ch : {&credit_src, &credit_sink, &credit_src_e, &credit_sink_l}) ch->tick();

    // Upstream: receive returned credits.
    if (auto c = credit_src.pop()) {
      ++up_credits[c->vc];
      ASSERT_LE(up_credits[c->vc], depth);
    }
    router.receive_phase();
    router.compute_phase();

    // Sink: receive flits, schedule credit return 1..4 cycles later.
    if (auto f = out_east.pop()) {
      auto& exp = received_flits[f->packet_id];
      ASSERT_EQ(exp, f->flit_index) << "out-of-order flit within packet";
      ++exp;
      if (f->tail) ++packets_done;
      pending_credit_delay[f->vc].push_back(1 + static_cast<int>(rng.uniform_below(4)));
    }
    // Age the pending credits; return those that mature (≤1 per cycle per
    // the channel's capacity — extras wait one more cycle).
    bool pushed_credit = false;
    for (int v = 0; v < num_vcs; ++v) {
      auto& q = pending_credit_delay[static_cast<std::size_t>(v)];
      for (auto& d : q) d = d > 0 ? d - 1 : 0;
      if (!pushed_credit && !q.empty() && q.front() == 0) {
        q.pop_front();
        credit_sink.push(Credit{static_cast<std::uint8_t>(v)});
        pushed_credit = true;
      }
    }

    // Upstream: maybe start / continue a packet (random stalls included).
    if (!send.active && next_packet_id <= kPackets && rng.bernoulli(0.4)) {
      const int vc = static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(num_vcs)));
      if (up_credits[static_cast<std::size_t>(vc)] > 0) {
        send.active = true;
        send.vc = vc;
        send.packet = next_packet_id++;
        send.flit = 0;
        send.size = 1 + static_cast<int>(rng.uniform_below(9));
      }
    }
    if (send.active && up_credits[static_cast<std::size_t>(send.vc)] > 0 &&
        rng.bernoulli(0.8)) {
      Flit f;
      f.packet_id = send.packet;
      f.src = 0;
      f.dst = 1;  // always routed East
      f.flit_index = static_cast<std::uint16_t>(send.flit);
      f.packet_size = static_cast<std::uint16_t>(send.size);
      f.head = (send.flit == 0);
      f.tail = (send.flit + 1 == send.size);
      f.vc = static_cast<std::uint8_t>(send.vc);
      in_local.push(f);
      --up_credits[static_cast<std::size_t>(send.vc)];
      if (++send.flit == send.size) send.active = false;
    }

    // The conservation invariant, every cycle, every East output VC:
    // router-held credits + credits in the return channel + sink flits not
    // yet credited + flits in the forward link == depth is NOT directly
    // observable (in-flight flits occupy no downstream slot yet), but the
    // router's credit counter must never exceed depth or go negative —
    // and the sum of credits it *could* reclaim is bounded by depth.
    for (int v = 0; v < num_vcs; ++v) {
      const int held = router.output_credits(PortDir::East, v);
      ASSERT_GE(held, 0);
      ASSERT_LE(held, depth);
      const auto owed =
          static_cast<int>(pending_credit_delay[static_cast<std::size_t>(v)].size()) +
          static_cast<int>(credit_sink.in_flight());
      ASSERT_LE(held + owed, depth + num_vcs)  // channel holds ≤1, shared bound
          << "credit overcount on VC " << v;
    }
  }
  EXPECT_EQ(packets_done, kPackets) << "fuzz run failed to deliver all packets";
}

// --- skip-idle activity-list fuzz -----------------------------------------
//
// Bursty on/off traffic over a whole mesh, in lockstep against the
// always-step discipline. The on/off envelope repeatedly drives nodes
// into quiescence and drags them back out — including routers that parked
// while credit-starved and can only re-activate through the credit push of
// a downstream traversal. Properties checked:
//
//   * conservation every cycle: generated == ejected + in-network + backlog;
//   * no stuck router: everything injected is eventually delivered;
//   * bit-identity: the skip-idle net's delivery stream matches always-step.

struct ActivityFuzzParams {
  int width;
  int height;
  int packet_size;  ///< > vc_buffer_depth forces multi-router credit stalls
  std::uint64_t seed;
};

class ActivityFuzz : public ::testing::TestWithParam<ActivityFuzzParams> {};

TEST_P(ActivityFuzz, BurstyOnOffConservesAndMatchesAlwaysStep) {
  const auto [width, height, packet_size, seed] = GetParam();
  NetworkConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.num_vcs = 2;
  cfg.vc_buffer_depth = 2;  // shallow: credit backpressure everywhere
  cfg.skip_idle = true;
  NetworkConfig cfg_off = cfg;
  cfg_off.skip_idle = false;
  Network on(cfg);
  Network off(cfg_off);

  common::Rng rng(seed);
  const int n = cfg.num_nodes();
  bool burst = false;
  int phase_left = 0;
  std::uint64_t generated_packets = 0;

  const std::uint64_t active_cycles = 4000;
  const std::uint64_t drain_cycles = 4000;
  for (std::uint64_t c = 1; c <= active_cycles + drain_cycles; ++c) {
    if (c <= active_cycles) {
      if (phase_left == 0) {
        // Alternate bursts (5..40 cycles) and silences (20..120 cycles) —
        // silences long enough for the whole mesh to park mid-run.
        burst = !burst;
        phase_left = burst ? 5 + static_cast<int>(rng.uniform_below(36))
                           : 20 + static_cast<int>(rng.uniform_below(101));
      }
      --phase_left;
      if (burst && rng.bernoulli(0.7)) {
        const auto src = static_cast<NodeId>(rng.uniform_below(static_cast<std::uint64_t>(n)));
        const auto dst = static_cast<NodeId>(rng.uniform_below(static_cast<std::uint64_t>(n)));
        const auto now = static_cast<common::Picoseconds>(c) * 1000;
        on.ni(src).enqueue_packet(dst, packet_size, now, c);
        off.ni(src).enqueue_packet(dst, packet_size, now, c);
        ++generated_packets;
      }
    }
    on.step(static_cast<common::Picoseconds>(c) * 1000);
    off.step(static_cast<common::Picoseconds>(c) * 1000);

    // Conservation on the skip-idle network, every cycle: no flit may be
    // lost in a parked corner of the mesh.
    ASSERT_EQ(on.total_flits_generated(),
              on.total_flits_ejected() + on.flits_in_network() +
                  on.total_source_backlog_flits())
        << "conservation violated at cycle " << c;
  }

  // No stuck router: the silence tail drains everything.
  EXPECT_EQ(on.total_packets_ejected(), generated_packets);
  EXPECT_EQ(on.flits_in_network(), 0u);
  EXPECT_EQ(on.island_active_nodes(0), 0);

  // Bit-identity against the always-step discipline, packet by packet.
  ASSERT_EQ(on.delivered().size(), off.delivered().size());
  for (std::size_t i = 0; i < on.delivered().size(); ++i) {
    const PacketRecord& pa = on.delivered()[i];
    const PacketRecord& pb = off.delivered()[i];
    ASSERT_EQ(pa.packet_id, pb.packet_id) << "record " << i;
    ASSERT_EQ(pa.eject_noc_cycle, pb.eject_noc_cycle) << "record " << i;
    ASSERT_EQ(pa.hops, pb.hops) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, ActivityFuzz,
                         ::testing::Values(ActivityFuzzParams{4, 4, 5, 21},
                                           ActivityFuzzParams{6, 6, 9, 22},
                                           ActivityFuzzParams{5, 3, 13, 23}),
                         [](const ::testing::TestParamInfo<ActivityFuzzParams>& info) {
                           return std::to_string(info.param.width) + "x" +
                                  std::to_string(info.param.height) + "_p" +
                                  std::to_string(info.param.packet_size) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// --- topology / fault-reroute fuzz ----------------------------------------
//
// Bursty uniform-random traffic over every topology kind and routing
// algorithm, with link/router faults firing mid-burst. Properties checked
// every cycle:
//
//   * fault-aware conservation: generated == ejected + in-network +
//     source backlog + dropped (NI-refused plus router-drained) — a fault
//     may destroy flits but never lose them from the ledger;
//   * progress watchdog: while anything is in flight, the ejected+dropped
//     ledger must advance within a bounded window (a routing cycle or a
//     credit deadlock would stall it forever);
//   * full drain: after the burst, everything generated is either
//     delivered or accounted as dropped, and the network empties.

struct TopologyFuzzParams {
  topo::TopologyKind kind;
  int width;
  int height;
  int concentration;
  RoutingAlgo routing;
  int num_vcs;
  const char* faults;  ///< "" = fault-free
  std::uint64_t seed;
};

class TopologyFuzz : public ::testing::TestWithParam<TopologyFuzzParams> {};

TEST_P(TopologyFuzz, FaultAwareConservationAndProgress) {
  const TopologyFuzzParams p = GetParam();
  NetworkConfig cfg;
  cfg.width = p.width;
  cfg.height = p.height;
  cfg.topology = p.kind;
  cfg.concentration = p.concentration;
  cfg.routing = p.routing;
  cfg.num_vcs = p.num_vcs;
  cfg.vc_buffer_depth = 2;  // shallow: credit backpressure everywhere
  cfg.faults = p.faults;
  cfg.fault_seed = p.seed;
  Network net(cfg);

  common::Rng rng(p.seed);
  const int n = cfg.num_nodes();
  bool burst = false;
  int phase_left = 0;

  const std::uint64_t active_cycles = 3000;
  const std::uint64_t max_cycles = 30000;
  constexpr std::uint64_t kWatchdogCycles = 2000;
  std::uint64_t last_progress_cycle = 0;
  std::uint64_t last_ledger = 0;

  std::uint64_t c = 1;
  for (; c <= max_cycles; ++c) {
    if (c <= active_cycles) {
      if (phase_left == 0) {
        burst = !burst;
        phase_left = burst ? 5 + static_cast<int>(rng.uniform_below(36))
                           : 20 + static_cast<int>(rng.uniform_below(101));
      }
      --phase_left;
      if (burst && rng.bernoulli(0.7)) {
        const auto src = static_cast<NodeId>(rng.uniform_below(static_cast<std::uint64_t>(n)));
        const auto dst = static_cast<NodeId>(rng.uniform_below(static_cast<std::uint64_t>(n)));
        net.ni(src).enqueue_packet(dst, 5, static_cast<common::Picoseconds>(c) * 1000, c);
      }
    }
    net.step(static_cast<common::Picoseconds>(c) * 1000);

    // Fault-aware conservation, every cycle.
    ASSERT_EQ(net.total_flits_generated(),
              net.total_flits_ejected() + net.flits_in_network() +
                  net.total_source_backlog_flits() + net.total_flits_dropped())
        << "conservation violated at cycle " << c;

    // Watchdog: anything in flight must keep the ledger moving.
    const std::uint64_t ledger = net.total_flits_ejected() + net.total_flits_dropped();
    const std::uint64_t outstanding =
        net.flits_in_network() + net.total_source_backlog_flits();
    if (ledger != last_ledger || outstanding == 0) {
      last_ledger = ledger;
      last_progress_cycle = c;
    }
    ASSERT_LT(c - last_progress_cycle, kWatchdogCycles)
        << "no ejection/drop progress since cycle " << last_progress_cycle << " with "
        << outstanding << " flits outstanding — routing cycle or credit deadlock";

    if (c > active_cycles && outstanding == 0) break;
  }

  // Full drain: everything generated was delivered or accounted as dropped.
  ASSERT_LE(c, max_cycles) << "network failed to drain";
  EXPECT_EQ(net.total_flits_generated(),
            net.total_flits_ejected() + net.total_flits_dropped());
  EXPECT_EQ(net.flits_in_network(), 0u);
  EXPECT_GT(net.total_packets_ejected(), 0u);
  if (cfg.faults.empty()) {
    EXPECT_EQ(net.total_flits_dropped(), 0u);
  } else {
    // The fault fired and the reroute machinery engaged.
    EXPECT_GT(net.failed_links() + net.failed_routers(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, TopologyFuzz,
    ::testing::Values(
        TopologyFuzzParams{topo::TopologyKind::Torus, 4, 4, 1, RoutingAlgo::XY, 2, "", 31},
        TopologyFuzzParams{topo::TopologyKind::Torus, 4, 4, 1, RoutingAlgo::Adaptive, 3,
                           "links:2@1000", 32},
        TopologyFuzzParams{topo::TopologyKind::Torus, 4, 4, 1, RoutingAlgo::Ugal, 4,
                           "links:1@500+routers:1@2000", 33},
        TopologyFuzzParams{topo::TopologyKind::Cmesh, 4, 4, 4, RoutingAlgo::XY, 1,
                           "routers:1@1500", 34},
        TopologyFuzzParams{topo::TopologyKind::Cmesh, 6, 4, 2, RoutingAlgo::Adaptive, 2,
                           "links:2@0", 35},
        TopologyFuzzParams{topo::TopologyKind::Dragonfly, 4, 3, 1, RoutingAlgo::XY, 2, "",
                           36},
        TopologyFuzzParams{topo::TopologyKind::Dragonfly, 6, 4, 2, RoutingAlgo::Ugal, 4,
                           "links:1@1000", 37},
        TopologyFuzzParams{topo::TopologyKind::Mesh, 4, 4, 1, RoutingAlgo::Adaptive, 2,
                           "routers:1@1000", 38}),
    [](const ::testing::TestParamInfo<TopologyFuzzParams>& info) {
      return std::string(topo::to_string(info.param.kind)) + "_" +
             to_string(info.param.routing) + "_s" + std::to_string(info.param.seed);
    });

INSTANTIATE_TEST_SUITE_P(Shapes, RouterFuzz,
                         ::testing::Values(FuzzParams{1, 1, 11}, FuzzParams{2, 2, 12},
                                           FuzzParams{4, 4, 13}, FuzzParams{8, 2, 14},
                                           FuzzParams{3, 7, 15}, FuzzParams{16, 4, 16}),
                         [](const ::testing::TestParamInfo<FuzzParams>& info) {
                           return "vc" + std::to_string(info.param.num_vcs) + "_d" +
                                  std::to_string(info.param.depth) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace nocdvfs::noc
