// Dual-clock kernel tests: edge interleaving at integer and non-integer
// frequency ratios, retuning semantics, and counter consistency.

#include <gtest/gtest.h>

#include "sim/clock.hpp"

namespace nocdvfs::sim {
namespace {

TEST(DualClock, EqualFrequenciesTickTogether) {
  DualClock clk(1e9, 1e9);
  for (int i = 0; i < 100; ++i) {
    const auto e = clk.advance();
    EXPECT_TRUE(e.node);
    EXPECT_TRUE(e.noc);
  }
  EXPECT_EQ(clk.node_cycles(), 100u);
  EXPECT_EQ(clk.noc_cycles(), 100u);
  EXPECT_EQ(clk.now(), 100'000u);  // 100 ns
}

TEST(DualClock, HalfRateNocTicksEveryOtherNodeCycle) {
  DualClock clk(1e9, 0.5e9);
  int node = 0, noc = 0;
  while (clk.now() < 100'000) {
    const auto e = clk.advance();
    node += e.node ? 1 : 0;
    noc += e.noc ? 1 : 0;
  }
  EXPECT_EQ(node, 100);
  EXPECT_EQ(noc, 50);
}

TEST(DualClock, NonIntegerRatioKeepsLongRunProportion) {
  DualClock clk(1e9, 333e6);
  while (clk.node_cycles() < 100000) clk.advance();
  const double ratio = static_cast<double>(clk.noc_cycles()) / clk.node_cycles();
  EXPECT_NEAR(ratio, 0.333, 0.001);
}

TEST(DualClock, CountersMatchElapsedTime) {
  DualClock clk(1e9, 750e6);
  while (clk.node_cycles() < 10000) clk.advance();
  // node: 1000 ps period → time = cycles × 1000.
  EXPECT_EQ(clk.now(), clk.node_cycles() * 1000u);
  // noc: 1333 ps period; counter must match time/period ±1.
  const auto expected_noc = clk.now() / 1333;
  EXPECT_NEAR(static_cast<double>(clk.noc_cycles()), static_cast<double>(expected_noc), 1.0);
}

TEST(DualClock, FrequencyChangeAppliesAfterPendingEdge) {
  DualClock clk(1e9, 1e9);
  clk.advance();  // t = 1000, both fire; next noc edge scheduled at 2000
  clk.set_noc_frequency(0.5e9);
  // The pending edge at 2000 still happens...
  auto e = clk.advance();
  EXPECT_TRUE(e.noc);
  EXPECT_EQ(clk.now(), 2000u);
  // ...and the new 2000 ps period applies afterwards: next noc edge at 4000.
  std::uint64_t next_noc_time = 0;
  while (next_noc_time == 0) {
    e = clk.advance();
    if (e.noc) next_noc_time = clk.now();
  }
  EXPECT_EQ(next_noc_time, 4000u);
}

TEST(DualClock, SpeedUpAlsoHonored) {
  DualClock clk(1e9, 333e6);
  clk.advance();  // node edge at 1000 (noc edge pending at 3003)
  clk.set_noc_frequency(1e9);
  std::uint64_t noc_edges_seen = 0;
  while (clk.now() < 20000) {
    if (clk.advance().noc) ++noc_edges_seen;
  }
  // Pending edge at 3003, then 1000 ps period: ≈ 1 + 17 edges by t = 20000.
  EXPECT_GE(noc_edges_seen, 17u);
}

TEST(DualClock, FrequencyAccessors) {
  DualClock clk(1e9, 500e6);
  EXPECT_DOUBLE_EQ(clk.node_frequency(), 1e9);
  EXPECT_DOUBLE_EQ(clk.noc_frequency(), 500e6);
  EXPECT_EQ(clk.noc_period_ps(), 2000u);
  clk.set_noc_frequency(333e6);
  EXPECT_EQ(clk.noc_period_ps(), 3003u);
}

TEST(DualClock, RejectsBadFrequencies) {
  EXPECT_THROW(DualClock(0.0, 1e9), std::invalid_argument);
  EXPECT_THROW(DualClock(1e9, -1.0), std::invalid_argument);
  DualClock clk(1e9, 1e9);
  EXPECT_THROW(clk.set_noc_frequency(0.0), std::invalid_argument);
}

TEST(DualClock, TimeStrictlyIncreases) {
  DualClock clk(1e9, 617e6);  // deliberately awkward ratio
  common::Picoseconds prev = 0;
  for (int i = 0; i < 10000; ++i) {
    clk.advance();
    ASSERT_GT(clk.now(), prev);
    prev = clk.now();
  }
}

}  // namespace
}  // namespace nocdvfs::sim
