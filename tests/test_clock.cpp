// Clock kernel tests: edge interleaving at integer and non-integer
// frequency ratios, retuning semantics, and counter consistency — for the
// original dual-clock kernel and its MultiClock generalization (N
// independently retunable NoC domains for voltage–frequency islands).

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/clock.hpp"

namespace nocdvfs::sim {
namespace {

TEST(DualClock, EqualFrequenciesTickTogether) {
  DualClock clk(1e9, 1e9);
  for (int i = 0; i < 100; ++i) {
    const auto e = clk.advance();
    EXPECT_TRUE(e.node);
    EXPECT_TRUE(e.noc);
  }
  EXPECT_EQ(clk.node_cycles(), 100u);
  EXPECT_EQ(clk.noc_cycles(), 100u);
  EXPECT_EQ(clk.now(), 100'000u);  // 100 ns
}

TEST(DualClock, HalfRateNocTicksEveryOtherNodeCycle) {
  DualClock clk(1e9, 0.5e9);
  int node = 0, noc = 0;
  while (clk.now() < 100'000) {
    const auto e = clk.advance();
    node += e.node ? 1 : 0;
    noc += e.noc ? 1 : 0;
  }
  EXPECT_EQ(node, 100);
  EXPECT_EQ(noc, 50);
}

TEST(DualClock, NonIntegerRatioKeepsLongRunProportion) {
  DualClock clk(1e9, 333e6);
  while (clk.node_cycles() < 100000) clk.advance();
  const double ratio = static_cast<double>(clk.noc_cycles()) / clk.node_cycles();
  EXPECT_NEAR(ratio, 0.333, 0.001);
}

TEST(DualClock, CountersMatchElapsedTime) {
  DualClock clk(1e9, 750e6);
  while (clk.node_cycles() < 10000) clk.advance();
  // node: 1000 ps period → time = cycles × 1000.
  EXPECT_EQ(clk.now(), clk.node_cycles() * 1000u);
  // noc: 1333 ps period; counter must match time/period ±1.
  const auto expected_noc = clk.now() / 1333;
  EXPECT_NEAR(static_cast<double>(clk.noc_cycles()), static_cast<double>(expected_noc), 1.0);
}

TEST(DualClock, FrequencyChangeAppliesAfterPendingEdge) {
  DualClock clk(1e9, 1e9);
  clk.advance();  // t = 1000, both fire; next noc edge scheduled at 2000
  clk.set_noc_frequency(0.5e9);
  // The pending edge at 2000 still happens...
  auto e = clk.advance();
  EXPECT_TRUE(e.noc);
  EXPECT_EQ(clk.now(), 2000u);
  // ...and the new 2000 ps period applies afterwards: next noc edge at 4000.
  std::uint64_t next_noc_time = 0;
  while (next_noc_time == 0) {
    e = clk.advance();
    if (e.noc) next_noc_time = clk.now();
  }
  EXPECT_EQ(next_noc_time, 4000u);
}

TEST(DualClock, SpeedUpAlsoHonored) {
  DualClock clk(1e9, 333e6);
  clk.advance();  // node edge at 1000 (noc edge pending at 3003)
  clk.set_noc_frequency(1e9);
  std::uint64_t noc_edges_seen = 0;
  while (clk.now() < 20000) {
    if (clk.advance().noc) ++noc_edges_seen;
  }
  // Pending edge at 3003, then 1000 ps period: ≈ 1 + 17 edges by t = 20000.
  EXPECT_GE(noc_edges_seen, 17u);
}

TEST(DualClock, FrequencyAccessors) {
  DualClock clk(1e9, 500e6);
  EXPECT_DOUBLE_EQ(clk.node_frequency(), 1e9);
  EXPECT_DOUBLE_EQ(clk.noc_frequency(), 500e6);
  EXPECT_EQ(clk.noc_period_ps(), 2000u);
  clk.set_noc_frequency(333e6);
  EXPECT_EQ(clk.noc_period_ps(), 3003u);
}

TEST(DualClock, RejectsBadFrequencies) {
  EXPECT_THROW(DualClock(0.0, 1e9), std::invalid_argument);
  EXPECT_THROW(DualClock(1e9, -1.0), std::invalid_argument);
  DualClock clk(1e9, 1e9);
  EXPECT_THROW(clk.set_noc_frequency(0.0), std::invalid_argument);
}

TEST(DualClock, TimeStrictlyIncreases) {
  DualClock clk(1e9, 617e6);  // deliberately awkward ratio
  common::Picoseconds prev = 0;
  for (int i = 0; i < 10000; ++i) {
    clk.advance();
    ASSERT_GT(clk.now(), prev);
    prev = clk.now();
  }
}

// ---------------------------------------------------------------------------
// MultiClock: N retunable NoC domains on the shared picosecond timeline.
// ---------------------------------------------------------------------------

TEST(MultiClock, SingleDomainMatchesDualClockEdgeForEdge) {
  DualClock dual(1e9, 617e6);
  MultiClock multi(1e9, {617e6});
  for (int i = 0; i < 20000; ++i) {
    const auto de = dual.advance();
    const auto me = multi.advance();
    ASSERT_EQ(me.node, de.node);
    ASSERT_EQ(me.noc_any, de.noc);
    ASSERT_EQ(multi.now(), dual.now());
    if (i == 7000) {
      dual.set_noc_frequency(871e6);
      multi.set_noc_frequency(0, 871e6);
    }
  }
  EXPECT_EQ(multi.noc_cycles(0), dual.noc_cycles());
  EXPECT_EQ(multi.node_cycles(), dual.node_cycles());
}

TEST(MultiClock, CoincidentEdgesAcrossThreeDomains) {
  // Periods 1000 / 2000 / 4000 ps: at t = 4000 the node domain and all
  // three NoC domains fire in the same advance(), reported together in
  // ascending domain order.
  MultiClock clk(1e9, {1e9, 0.5e9, 0.25e9});
  bool saw_triple = false;
  while (clk.now() < 20000) {
    const auto e = clk.advance();
    if (clk.now() % 4000 == 0) {
      EXPECT_TRUE(e.node);
      EXPECT_TRUE(e.noc_any);
      ASSERT_EQ(clk.fired().size(), 3u);
      EXPECT_EQ(clk.fired()[0], 0);
      EXPECT_EQ(clk.fired()[1], 1);
      EXPECT_EQ(clk.fired()[2], 2);
      saw_triple = true;
    } else if (clk.now() % 2000 == 0) {
      ASSERT_EQ(clk.fired().size(), 2u);
    }
    ASSERT_TRUE(std::is_sorted(clk.fired().begin(), clk.fired().end()));
  }
  EXPECT_TRUE(saw_triple);
  EXPECT_EQ(clk.noc_cycles(0), 20u);
  EXPECT_EQ(clk.noc_cycles(1), 10u);
  EXPECT_EQ(clk.noc_cycles(2), 5u);
}

TEST(MultiClock, RetuneExactlyOnControlWindowBoundary) {
  // Retuning at an instant where the domain just fired (a control update
  // lands exactly on the domain's own edge) keeps the already-scheduled
  // next edge and applies the new period after it — same glitch-free rule
  // as DualClock.
  MultiClock clk(1e9, {1e9});
  clk.advance();  // t = 1000: both domains fired; next noc edge at 2000
  ASSERT_EQ(clk.fired().size(), 1u);
  clk.set_noc_frequency(0, 0.5e9);
  auto e = clk.advance();
  EXPECT_TRUE(e.noc_any);
  EXPECT_EQ(clk.now(), 2000u);  // pending edge kept its instant
  std::uint64_t next_noc_time = 0;
  while (next_noc_time == 0) {
    e = clk.advance();
    if (e.noc_any) next_noc_time = clk.now();
  }
  EXPECT_EQ(next_noc_time, 4000u);  // then the 2000 ps period applies
}

TEST(MultiClock, RetuningOneDomainNeverPerturbsAnother) {
  MultiClock a(1e9, {750e6, 617e6});
  MultiClock b(1e9, {750e6, 617e6});
  // Drive both clocks identically except that `b` keeps retuning domain 0.
  std::vector<common::Picoseconds> a_dom1_edges, b_dom1_edges;
  for (int i = 0; i < 5000; ++i) {
    a.advance();
    if (std::find(a.fired().begin(), a.fired().end(), 1) != a.fired().end()) {
      a_dom1_edges.push_back(a.now());
    }
  }
  int flip = 0;
  while (b.now() < a.now()) {
    b.advance();
    if (std::find(b.fired().begin(), b.fired().end(), 1) != b.fired().end()) {
      b_dom1_edges.push_back(b.now());
    }
    if (b.node_cycles() % 100 == 0) {
      b.set_noc_frequency(0, (flip++ % 2) ? 750e6 : 333e6);
    }
  }
  // Domain 1's edge schedule is bit-identical despite domain 0's churn.
  ASSERT_GE(b_dom1_edges.size(), a_dom1_edges.size());
  for (std::size_t i = 0; i < a_dom1_edges.size(); ++i) {
    ASSERT_EQ(b_dom1_edges[i], a_dom1_edges[i]);
  }
  EXPECT_DOUBLE_EQ(b.noc_frequency(1), 617e6);
}

TEST(MultiClock, PerDomainCountersMatchElapsedTime) {
  MultiClock clk(1e9, {750e6, 500e6, 250e6});
  while (clk.node_cycles() < 10000) clk.advance();
  EXPECT_EQ(clk.now(), clk.node_cycles() * 1000u);
  EXPECT_NEAR(static_cast<double>(clk.noc_cycles(0)),
              static_cast<double>(clk.now() / 1333), 1.0);
  EXPECT_EQ(clk.noc_cycles(1), clk.now() / 2000);
  EXPECT_EQ(clk.noc_cycles(2), clk.now() / 4000);
}

TEST(MultiClock, Validation) {
  EXPECT_THROW(MultiClock(1e9, {}), std::invalid_argument);
  EXPECT_THROW(MultiClock(1e9, {1e9, 0.0}), std::invalid_argument);
  MultiClock clk(1e9, {1e9, 0.5e9});
  EXPECT_THROW(clk.set_noc_frequency(1, -1.0), std::invalid_argument);
  EXPECT_THROW(clk.set_noc_frequency(5, 1e9), std::out_of_range);
  EXPECT_EQ(clk.num_noc_domains(), 2);
}

}  // namespace
}  // namespace nocdvfs::sim
