/// \file nocdvfs_trace.cpp
/// Inspection CLI for `.noctrace` packet traces:
///
///   nocdvfs_trace info  <file>         header + aggregate summary
///   nocdvfs_trace head  <file> [n]     first n records (default 10)
///   nocdvfs_trace stats <file> [--csv] per-class / per-node breakdown
///
/// `stats --csv` emits one machine-readable row per node
/// (`node,x,y,src_packets,src_flits,dst_packets,dst_flits`) so plotting
/// scripts can consume traces without awk surgery.
///
/// `head` and `stats` stream through TraceReader — they never hold the
/// whole trace in memory, so they work on arbitrarily large captures.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace {

using nocdvfs::trace::TraceReader;
using nocdvfs::trace::TracePacket;

int usage() {
  std::cerr << "usage: nocdvfs_trace <info|head|stats> <file.noctrace> [count|--csv]\n"
               "  info   print the header and aggregate summary\n"
               "  head   print the first [count] records with their packet ids "
               "(default 10)\n"
               "  stats  per-class and per-node breakdown of the full trace;\n"
               "         --csv emits one row per node "
               "(node,x,y,src_packets,src_flits,dst_packets,dst_flits)\n";
  return 2;
}

void print_header(const TraceReader& reader, const std::string& path) {
  const auto& h = reader.header();
  std::cout << "file:        " << path << "\n"
            << "format:      noctrace v" << nocdvfs::trace::kTraceVersion << "\n"
            << "mesh:        " << h.width << "x" << h.height << " (" << h.num_nodes()
            << " nodes)\n"
            << "flit bits:   " << h.flit_bits << "\n"
            << "node clock:  " << h.f_node_hz * 1e-9 << " GHz\n"
            << "packets:     " << h.packet_count << "\n";
}

int cmd_info(const std::string& path) {
  TraceReader reader(path);
  print_header(reader, path);
  std::uint64_t flits = 0;
  std::uint64_t last_cycle = 0;
  while (auto p = reader.next()) {
    flits += p->flits;
    last_cycle = p->inject_node_cycle;
  }
  const std::uint64_t span = reader.packets_read() > 0 ? last_cycle + 1 : 0;
  std::cout << "flits:       " << flits << "\n"
            << "span:        " << span << " node cycles\n";
  if (span > 0) {
    const double lambda = static_cast<double>(flits) /
                          (static_cast<double>(span) * reader.header().num_nodes());
    std::cout << "mean lambda: " << lambda << " flits/node-cycle/node\n";
  }
  return 0;
}

int cmd_head(const std::string& path, std::uint64_t count) {
  TraceReader reader(path);
  // Recording observes every enqueue (including route-refused packets, which
  // still consume an id), so the record ordinal IS the packet's globally
  // unique id — no per-record id field is needed in the format.
  std::cout << "packet_id,cycle,src,dst,flits,class\n";
  std::uint64_t shown = 0;
  while (shown < count) {
    const auto p = reader.next();
    if (!p) break;
    std::cout << shown << ',' << p->inject_node_cycle << ',' << p->src << ','
              << p->dst << ',' << p->flits << ','
              << static_cast<int>(p->traffic_class) << "\n";
    ++shown;
  }
  return 0;
}

int cmd_stats(const std::string& path, bool csv) {
  TraceReader reader(path);
  if (!csv) print_header(reader, path);

  const int nodes = reader.header().num_nodes();
  std::vector<std::uint64_t> src_flits(static_cast<std::size_t>(nodes), 0);
  std::vector<std::uint64_t> src_packets(static_cast<std::size_t>(nodes), 0);
  std::vector<std::uint64_t> dst_flits(static_cast<std::size_t>(nodes), 0);
  std::vector<std::uint64_t> dst_packets(static_cast<std::size_t>(nodes), 0);
  std::uint64_t class_packets[256] = {};
  std::uint64_t flits = 0;
  std::uint16_t min_size = 0xffff;
  std::uint16_t max_size = 0;
  std::uint64_t last_cycle = 0;

  while (auto p = reader.next()) {
    src_flits[p->src] += p->flits;
    ++src_packets[p->src];
    dst_flits[p->dst] += p->flits;
    ++dst_packets[p->dst];
    ++class_packets[p->traffic_class];
    flits += p->flits;
    min_size = std::min(min_size, p->flits);
    max_size = std::max(max_size, p->flits);
    last_cycle = p->inject_node_cycle;
  }
  if (csv) {
    const int width = reader.header().width;
    std::cout << "node,x,y,src_packets,src_flits,dst_packets,dst_flits\n";
    for (int n = 0; n < nodes; ++n) {
      std::cout << n << ',' << n % width << ',' << n / width << ','
                << src_packets[static_cast<std::size_t>(n)] << ','
                << src_flits[static_cast<std::size_t>(n)] << ','
                << dst_packets[static_cast<std::size_t>(n)] << ','
                << dst_flits[static_cast<std::size_t>(n)] << "\n";
    }
    return 0;
  }
  const std::uint64_t packets = reader.packets_read();
  if (packets == 0) {
    std::cout << "(empty trace)\n";
    return 0;
  }
  const std::uint64_t span = last_cycle + 1;
  std::cout << "span:        " << span << " node cycles\n"
            << "flits:       " << flits << "\n"
            << "mean lambda: "
            << static_cast<double>(flits) / (static_cast<double>(span) * nodes)
            << " flits/node-cycle/node\n"
            << "packet size: min " << min_size << " / mean "
            << static_cast<double>(flits) / static_cast<double>(packets) << " / max "
            << max_size << " flits\n";

  std::cout << "classes:    ";
  for (int c = 0; c < 256; ++c) {
    if (class_packets[c] > 0) std::cout << "  [" << c << "] " << class_packets[c];
  }
  std::cout << "\n";

  // Top-5 sources by injected flits.
  std::vector<int> order(src_flits.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return src_flits[a] > src_flits[b]; });
  std::cout << "top sources (node: flits):";
  const int top = std::min<int>(5, nodes);
  for (int i = 0; i < top && src_flits[order[i]] > 0; ++i) {
    std::cout << "  " << order[i] << ": " << src_flits[order[i]];
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  try {
    if (cmd == "info") return cmd_info(path);
    if (cmd == "head") {
      std::uint64_t count = 10;
      if (argc > 3) count = std::stoull(argv[3]);
      return cmd_head(path, count);
    }
    if (cmd == "stats") {
      const bool csv = argc > 3 && std::string(argv[3]) == "--csv";
      if (argc > 3 && !csv) return usage();
      return cmd_stats(path, csv);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
