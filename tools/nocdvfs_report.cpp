/// \file nocdvfs_report.cpp
/// Run-report CLI for `.nocobs` telemetry timelines (written by runs with
/// `telemetry=windows|full telemetry_out=<base>`):
///
///   nocdvfs_report summary <file.nocobs>            header, stall breakdown,
///                                                   hot tiles/links, islands
///   nocdvfs_report heatmap <file.nocobs> [metric]   ASCII per-tile heatmap
///                                                   (default flits_forwarded)
///   nocdvfs_report links   <file.nocobs> [n]        top congested links
///                                                   (needs telemetry=full)
///   nocdvfs_report islands <file.nocobs>            per-island actuation
///   nocdvfs_report events  <file.nocobs> [n]        the event timeline
///   nocdvfs_report percentiles <file.nocobs>        latency-distribution
///                                                   tables (hist=on runs)
///   nocdvfs_report profile <file.nocobs>            host phase profile, top
///                                                   exclusive costs, worker
///                                                   utilization, manifest
///                                                   (prof=on runs / sweep
///                                                   host timelines)
///
/// Everything renders from the binary timeline alone — no simulator state
/// — so reports work on artifacts copied off CI.

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "obs/latency_hist.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"

namespace {

using nocdvfs::obs::EventKind;
using nocdvfs::obs::MetricSeries;
using nocdvfs::obs::Timeline;

int usage() {
  std::cerr
      << "usage: nocdvfs_report <summary|heatmap|links|islands|events|percentiles|"
         "profile> <file.nocobs> [metric|count]\n"
         "  summary     header, stall-cause breakdown, hot tiles/links, island recap\n"
         "  heatmap     ASCII per-tile heatmap of a tile metric (default "
         "flits_forwarded;\n"
         "              try stall_credit, busy_vc_cycles, flits_dropped, ...)\n"
         "  links       top [count] congested links by forwarded flits "
         "(telemetry=full runs)\n"
         "  islands     per-island actuation summary (policy, f stats, events)\n"
         "  events      the run's event timeline (first [count] events; default all)\n"
         "  percentiles latency-distribution tables: p50..p99.9 per scope "
         "(hist=on runs)\n"
         "  profile     host phase profile + top exclusive costs, sweep-worker\n"
         "              utilization, and the run-provenance manifest (prof=on runs)\n";
  return 2;
}

/// Tile grid shape: routers match the NI grid at concentration 1;
/// concentrated/irregular topologies fall back to a single row.
std::pair<int, int> tile_grid(const Timeline& tl) {
  if (tl.num_routers == tl.width * tl.height) return {tl.width, tl.height};
  return {tl.num_routers, 1};
}

void print_header(const Timeline& tl, const std::string& path) {
  std::cout << "file:       " << path << "\n"
            << "format:     nocobs v" << tl.version << "\n"
            << "mesh:       " << tl.width << "x" << tl.height << " nodes, "
            << tl.num_routers << " routers (concentration " << tl.concentration
            << ")\n"
            << "islands:    " << tl.num_islands << "\n"
            << "node clock: " << tl.f_node_hz * 1e-9 << " GHz, control period "
            << tl.control_period_node_cycles << " node cycles\n"
            << "windows:    " << tl.windows();
  if (!tl.window_t_ps.empty()) {
    std::cout << " (span " << static_cast<double>(tl.window_t_ps.back()) * 1e-6
              << " us)";
  }
  std::cout << "\n";
}

std::vector<std::uint64_t> tile_totals(const Timeline& tl, const MetricSeries& series) {
  std::vector<std::uint64_t> totals(static_cast<std::size_t>(series.entities), 0);
  for (int e = 0; e < series.entities; ++e) totals[static_cast<std::size_t>(e)] = series.entity_total(e);
  (void)tl;
  return totals;
}

int cmd_heatmap(const Timeline& tl, const std::string& metric) {
  const MetricSeries* series = tl.find_series(metric);
  if (series == nullptr) {
    std::cerr << "error: no series named '" << metric << "' in this timeline; have:";
    for (const MetricSeries& s : tl.series) std::cerr << ' ' << s.name;
    std::cerr << "\n";
    return 1;
  }
  if (series->kind != nocdvfs::obs::MetricKind::Counter) {
    std::cerr << "error: '" << metric << "' is a gauge; the heatmap renders counters\n";
    return 1;
  }
  const std::vector<std::uint64_t> totals = tile_totals(tl, *series);
  const std::uint64_t peak = totals.empty() ? 0 : *std::max_element(totals.begin(), totals.end());

  // 10-step density ramp; '@' is the peak tile.
  static const char kRamp[] = " .:-=+*#%@";
  const auto [gw, gh] = series->scope == nocdvfs::obs::MetricScope::Tile
                            ? tile_grid(tl)
                            : std::pair<int, int>{tl.width, tl.height};
  if (gw * gh != series->entities) {
    std::cerr << "error: series '" << metric << "' has " << series->entities
              << " entities; cannot lay out a " << gw << "x" << gh << " grid\n";
    return 1;
  }
  std::cout << metric << " per tile (peak " << peak << "):\n";
  for (int y = gh - 1; y >= 0; --y) {
    std::cout << "  ";
    for (int x = 0; x < gw; ++x) {
      const std::uint64_t v = totals[static_cast<std::size_t>(y * gw + x)];
      const int step =
          peak == 0 ? 0
                    : static_cast<int>((v * 9 + peak - 1) / peak);  // ceil to 0..9
      std::cout << kRamp[step] << ' ';
    }
    std::cout << "\n";
  }
  std::cout << "scale: ' '=0";
  for (int s = 1; s <= 9; ++s) {
    std::cout << "  '" << kRamp[s] << "'<=" << (peak * static_cast<std::uint64_t>(s) + 8) / 9;
  }
  std::cout << "\n";
  // The numeric row-major dump plotting scripts consume.
  std::cout << "totals:";
  for (const std::uint64_t v : totals) std::cout << ' ' << v;
  std::cout << "\n";
  return 0;
}

int cmd_links(const Timeline& tl, int count) {
  const MetricSeries* series = tl.find_series("link_flits");
  if (series == nullptr || tl.links.empty()) {
    std::cerr << "error: no per-link series in this timeline (links are recorded "
                 "with telemetry=full)\n";
    return 1;
  }
  struct Row {
    int idx;
    std::uint64_t flits;
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(series->entities));
  for (int e = 0; e < series->entities; ++e) rows.push_back({e, series->entity_total(e)});
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.flits != b.flits ? a.flits > b.flits : a.idx < b.idx;
  });
  const int n = std::min<int>(count, static_cast<int>(rows.size()));
  std::cout << "top " << n << " links by forwarded flits:\n"
            << "  link           flits\n";
  for (int i = 0; i < n; ++i) {
    const nocdvfs::obs::LinkInfo& li = tl.links[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)].idx)];
    std::cout << "  r" << std::setw(3) << std::left << li.src_router << " -> r"
              << std::setw(3) << std::left << li.dst_router << std::right << "  "
              << std::setw(10) << rows[static_cast<std::size_t>(i)].flits << "\n";
  }
  return 0;
}

int cmd_islands(const Timeline& tl) {
  std::vector<std::uint64_t> actuations(static_cast<std::size_t>(tl.num_islands), 0);
  std::vector<std::uint64_t> throttles(static_cast<std::size_t>(tl.num_islands), 0);
  for (const nocdvfs::obs::TimelineEvent& ev : tl.events) {
    if (ev.island < 0 || ev.island >= tl.num_islands) continue;
    if (ev.kind == EventKind::DvfsActuation) ++actuations[static_cast<std::size_t>(ev.island)];
    if (ev.kind == EventKind::ThrottleEngage) ++throttles[static_cast<std::size_t>(ev.island)];
  }
  // The island column grows with the id's digit count so the table stays
  // aligned past 10 (or 100) islands.
  const int iw = std::max<int>(
      8, static_cast<int>(std::to_string(std::max(tl.num_islands - 1, 0)).size()) + 2);
  std::cout << std::left << std::setw(iw) << "island" << std::setw(14) << "policy"
            << std::setw(7) << "nodes" << std::right << std::setw(11) << "f_mean(GHz)"
            << std::setw(8) << "f_min" << std::setw(8) << "f_max" << std::setw(9)
            << "f_final" << std::setw(14) << "avg_delay(ns)" << std::setw(12)
            << "actuations" << std::setw(11) << "throttles" << std::setw(19)
            << "throttled_windows" << "\n";
  for (int i = 0; i < tl.num_islands; ++i) {
    double f_min = 0.0, f_max = 0.0, f_sum = 0.0, f_final = 0.0;
    double delay_sum = 0.0;
    std::uint64_t throttled_windows = 0;
    for (int w = 0; w < tl.windows(); ++w) {
      const nocdvfs::obs::IslandWindowRow& row = tl.island_row(w, i);
      if (w == 0) {
        f_min = f_max = row.f_hz;
      } else {
        f_min = std::min(f_min, row.f_hz);
        f_max = std::max(f_max, row.f_hz);
      }
      f_sum += row.f_hz;
      delay_sum += row.avg_delay_ns;
      if (row.throttled != 0) ++throttled_windows;
      f_final = row.f_hz;
    }
    const double f_mean = tl.windows() > 0 ? f_sum / tl.windows() : 0.0;
    const double delay_mean = tl.windows() > 0 ? delay_sum / tl.windows() : 0.0;
    std::cout << std::left << std::setw(iw) << i << std::setw(14)
              << (i < static_cast<int>(tl.island_policy.size()) ? tl.island_policy[static_cast<std::size_t>(i)]
                                                                : "?")
              << std::setw(7)
              << (i < static_cast<int>(tl.island_nodes.size()) ? tl.island_nodes[static_cast<std::size_t>(i)] : 0)
              << std::right << std::fixed << std::setprecision(3) << std::setw(11)
              << f_mean * 1e-9 << std::setw(8) << f_min * 1e-9 << std::setw(8)
              << f_max * 1e-9 << std::setw(9) << f_final * 1e-9 << std::setprecision(1)
              << std::setw(14) << delay_mean << std::defaultfloat
              << std::setw(12) << actuations[static_cast<std::size_t>(i)] << std::setw(11)
              << throttles[static_cast<std::size_t>(i)] << std::setw(19) << throttled_windows << "\n";
  }
  return 0;
}

int cmd_percentiles(const Timeline& tl) {
  if (tl.histograms.empty()) {
    std::cerr << "error: no latency histograms in this timeline (record them with "
                 "hist=on telemetry=windows|full telemetry_out=<base>)\n";
    return 1;
  }
  std::cout << "latency percentiles (streaming log2 sub-bucket histograms; each "
               "quantile is exact\nto within one bucket width):\n"
            << std::left << std::setw(22) << "scope" << std::setw(8) << "unit"
            << std::right << std::setw(10) << "count" << std::setw(11) << "min"
            << std::setw(11) << "p50" << std::setw(11) << "p90" << std::setw(11)
            << "p95" << std::setw(11) << "p99" << std::setw(11) << "p99.9"
            << std::setw(11) << "max" << "\n";
  for (const nocdvfs::obs::HistogramSnapshot& h : tl.histograms) {
    // Picosecond-valued scopes render in ns; everything else is raw cycles.
    const bool ps =
        h.label.size() > 3 && h.label.compare(h.label.size() - 3, 3, "_ps") == 0;
    const double scale = ps ? 1e-3 : 1.0;
    const std::string scope = ps ? h.label.substr(0, h.label.size() - 3) : h.label;
    const auto q = [&](double p) {
      return static_cast<double>(nocdvfs::obs::snapshot_quantile(h, p)) * scale;
    };
    std::cout << std::left << std::setw(22) << scope << std::setw(8)
              << (ps ? "ns" : "cycles") << std::right << std::setw(10) << h.count
              << std::fixed << std::setprecision(1) << std::setw(11)
              << static_cast<double>(h.min) * scale << std::setw(11) << q(0.5)
              << std::setw(11) << q(0.9) << std::setw(11) << q(0.95) << std::setw(11)
              << q(0.99) << std::setw(11) << q(0.999) << std::setw(11)
              << static_cast<double>(h.max) * scale << std::defaultfloat << "\n";
  }
  return 0;
}

int cmd_events(const Timeline& tl, int count) {
  const int n = count > 0 ? std::min<int>(count, static_cast<int>(tl.events.size()))
                          : static_cast<int>(tl.events.size());
  std::cout << "t_us        island  kind             a             b\n";
  for (int i = 0; i < n; ++i) {
    const nocdvfs::obs::TimelineEvent& ev = tl.events[static_cast<std::size_t>(i)];
    std::cout << std::fixed << std::setprecision(3) << std::setw(10)
              << static_cast<double>(ev.t_ps) * 1e-6 << std::defaultfloat << "  "
              << std::setw(6) << (ev.island < 0 ? std::string("net") : std::to_string(ev.island))
              << "  " << std::left << std::setw(15) << to_string(ev.kind) << std::right
              << "  " << std::setw(12) << ev.a << "  " << std::setw(12) << ev.b << "\n";
  }
  if (n < static_cast<int>(tl.events.size())) {
    std::cout << "... (" << tl.events.size() - static_cast<std::size_t>(n) << " more)\n";
  }
  return 0;
}

int cmd_profile(const Timeline& tl, const std::string& path) {
  using nocdvfs::obs::PhaseStats;
  if (tl.host_phases.empty() && tl.host_workers.empty() && tl.manifest.empty()) {
    std::cerr << "error: no host-observability sections in this timeline (record "
                 "them with prof=on telemetry=windows|full telemetry_out=<base>, "
                 "or export a sweep host timeline)\n";
    return 1;
  }
  std::cout << "file:   " << path << "\n"
            << "format: nocobs v" << tl.version << "\n";

  if (!tl.host_phases.empty()) {
    const std::uint64_t root_ns = tl.host_phases.front().inclusive_ns;
    std::cout << "\nhost phase profile (inclusive tree, preorder):\n"
              << std::left << std::setw(34) << "  phase" << std::right << std::setw(10)
              << "calls" << std::setw(13) << "incl(ms)" << std::setw(13) << "excl(ms)"
              << std::setw(9) << "incl%" << "\n";
    for (const PhaseStats& p : tl.host_phases) {
      std::string name(static_cast<std::size_t>(p.depth) * 2, ' ');
      name += p.name;
      if (name.size() > 32) name = name.substr(0, 29) + "...";
      const double pct = root_ns > 0 ? 100.0 * static_cast<double>(p.inclusive_ns) /
                                           static_cast<double>(root_ns)
                                     : 0.0;
      std::cout << "  " << std::left << std::setw(32) << name << std::right
                << std::setw(10) << p.calls << std::fixed << std::setprecision(3)
                << std::setw(13) << static_cast<double>(p.inclusive_ns) * 1e-6
                << std::setw(13) << static_cast<double>(p.exclusive_ns) * 1e-6
                << std::setprecision(1) << std::setw(8) << pct << "%"
                << std::defaultfloat << "\n";
    }

    std::vector<const PhaseStats*> by_excl;
    for (const PhaseStats& p : tl.host_phases) by_excl.push_back(&p);
    std::sort(by_excl.begin(), by_excl.end(), [](const PhaseStats* a, const PhaseStats* b) {
      return a->exclusive_ns != b->exclusive_ns ? a->exclusive_ns > b->exclusive_ns
                                                : a->name < b->name;
    });
    std::cout << "\ntop exclusive costs (where the wall time actually went):\n";
    for (std::size_t i = 0; i < by_excl.size() && i < 8; ++i) {
      const PhaseStats& p = *by_excl[i];
      const double pct = root_ns > 0 ? 100.0 * static_cast<double>(p.exclusive_ns) /
                                           static_cast<double>(root_ns)
                                     : 0.0;
      std::cout << "  " << std::left << std::setw(26) << p.name << std::right
                << std::fixed << std::setprecision(3) << std::setw(13)
                << static_cast<double>(p.exclusive_ns) * 1e-6 << " ms"
                << std::setprecision(1) << std::setw(7) << pct << "%"
                << std::defaultfloat << "\n";
    }
  }

  if (!tl.host_workers.empty()) {
    std::uint64_t sweep_end_ns = 0;
    for (const nocdvfs::obs::HostWorkerSpan& sp : tl.host_spans) {
      sweep_end_ns = std::max(sweep_end_ns, sp.t1_ns);
    }
    std::cout << "\nsweep workers (" << tl.host_workers.size() << ", sweep span "
              << std::fixed << std::setprecision(3)
              << static_cast<double>(sweep_end_ns) * 1e-9 << " s):\n"
              << std::defaultfloat << std::left << std::setw(10) << "  worker"
              << std::right << std::setw(8) << "points" << std::setw(12) << "busy(s)"
              << std::setw(8) << "util" << "\n";
    for (const nocdvfs::obs::HostWorkerStats& w : tl.host_workers) {
      const double util = sweep_end_ns > 0 ? 100.0 * static_cast<double>(w.busy_ns) /
                                                 static_cast<double>(sweep_end_ns)
                                           : 0.0;
      std::cout << "  " << std::left << std::setw(8) << w.worker << std::right
                << std::setw(8) << w.points << std::fixed << std::setprecision(3)
                << std::setw(12) << static_cast<double>(w.busy_ns) * 1e-9
                << std::setprecision(1) << std::setw(7) << util << "%"
                << std::defaultfloat << "\n";
    }
  }

  if (!tl.manifest.empty()) {
    std::cout << "\nrun manifest (" << tl.manifest.size() << " entries):\n";
    for (const auto& [key, value] : tl.manifest) {
      std::cout << "  " << std::left << std::setw(32) << key << std::right << "  "
                << value << "\n";
    }
  }
  return 0;
}

int cmd_summary(const Timeline& tl, const std::string& path) {
  print_header(tl, path);

  // Stall-cause breakdown: each series sums (over windows and tiles) to the
  // routers' whole-run counters; busy_vc_cycles is the denominator.
  const char* kStalls[] = {"stall_route", "stall_vc_alloc", "stall_switch",
                           "stall_credit", "stall_drop"};
  std::uint64_t busy = 0;
  if (const MetricSeries* s = tl.find_series("busy_vc_cycles")) {
    for (int e = 0; e < s->entities; ++e) busy += s->entity_total(e);
  }
  std::cout << "\nstall breakdown (VC-cycles, % of " << busy << " busy):\n";
  std::uint64_t stall_sum = 0;
  for (const char* name : kStalls) {
    const MetricSeries* s = tl.find_series(name);
    if (s == nullptr) continue;
    std::uint64_t total = 0;
    for (int e = 0; e < s->entities; ++e) total += s->entity_total(e);
    stall_sum += total;
    std::cout << "  " << std::left << std::setw(15) << name << std::right
              << std::setw(12) << total << "  ";
    if (busy > 0) {
      std::cout << std::fixed << std::setprecision(1)
                << 100.0 * static_cast<double>(total) / static_cast<double>(busy)
                << std::defaultfloat << "%";
    }
    std::cout << "\n";
  }
  if (const MetricSeries* s = tl.find_series("flits_forwarded")) {
    std::uint64_t fw = 0;
    for (int e = 0; e < s->entities; ++e) fw += s->entity_total(e);
    std::cout << "  " << std::left << std::setw(15) << "forwarding" << std::right
              << std::setw(12) << (busy - std::min(busy, stall_sum)) << "  ("
              << fw << " flits forwarded)\n";
  }

  // Top-5 hot tiles.
  if (const MetricSeries* s = tl.find_series("flits_forwarded")) {
    std::vector<std::pair<std::uint64_t, int>> hot;
    for (int e = 0; e < s->entities; ++e) hot.push_back({s->entity_total(e), e});
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    std::cout << "\nhot tiles (router: flits forwarded):";
    for (std::size_t i = 0; i < hot.size() && i < 5; ++i) {
      std::cout << "  r" << hot[i].second << ": " << hot[i].first;
    }
    std::cout << "\n";
  }
  std::cout << "\n";
  if (tl.find_series("link_flits") != nullptr) {
    cmd_links(tl, 5);
  } else {
    std::cout << "(no per-link series; run with telemetry=full for link stats)\n";
  }
  std::cout << "\n";
  cmd_islands(tl);
  if (!tl.histograms.empty()) {
    std::cout << "\n";
    cmd_percentiles(tl);
  }
  std::cout << "\nevents: " << tl.events.size() << " (nocdvfs_report events " << path
            << " to list)\n";
  std::cout << "\n";
  return cmd_heatmap(tl, "flits_forwarded");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  try {
    const Timeline tl = nocdvfs::obs::read_timeline_binary(path);
    if (cmd == "summary") return cmd_summary(tl, path);
    if (cmd == "heatmap") {
      const std::string metric = argc > 3 ? argv[3] : "flits_forwarded";
      return cmd_heatmap(tl, metric);
    }
    if (cmd == "links") {
      const int count = argc > 3 ? std::stoi(argv[3]) : 10;
      return cmd_links(tl, count);
    }
    if (cmd == "islands") return cmd_islands(tl);
    if (cmd == "percentiles") return cmd_percentiles(tl);
    if (cmd == "profile") return cmd_profile(tl, path);
    if (cmd == "events") {
      const int count = argc > 3 ? std::stoi(argv[3]) : 0;
      return cmd_events(tl, count);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
